// The simulator itself: mset semantics, manual stepping, schedulers,
// failure injection, forking, history recording.
#include <gtest/gtest.h>

#include "checker/atomicity.h"
#include "registers/registry.h"
#include "sim/world.h"
#include "sim_test_util.h"

namespace fastreg::sim {
namespace {

using test::make_cfg;

world make_world(const char* proto = "abd", std::uint32_t S = 3,
                 std::uint32_t t = 1, std::uint32_t R = 2) {
  world w(make_cfg(S, t, R));
  w.install(*make_protocol(proto));
  return w;
}

TEST(World, InvokeWritePutsMessagesInTransit) {
  auto w = make_world();
  EXPECT_TRUE(w.in_transit().empty());
  w.invoke_write("x");
  EXPECT_EQ(w.in_transit().size(), 3u);  // one write_req per server
  for (const auto& e : w.in_transit()) {
    EXPECT_EQ(e.from, writer_id(0));
    EXPECT_TRUE(e.to.is_server());
    EXPECT_EQ(e.msg.type, msg_type::write_req);
  }
}

TEST(World, DeliverExecutesSingleStep) {
  auto w = make_world();
  w.invoke_write("x");
  const auto id = w.in_transit().front().id;
  EXPECT_TRUE(w.deliver(id));
  EXPECT_FALSE(w.deliver(id));  // consumed
  // The server's ack is now in transit alongside the two other requests.
  EXPECT_EQ(w.in_transit().size(), 3u);
  EXPECT_EQ(w.messages_delivered(), 1u);
}

TEST(World, DeliverMatchingSnapshotSemantics) {
  auto w = make_world();
  w.invoke_write("x");
  // Deliver all write requests; acks generated during the sweep must not
  // be delivered by the same call.
  const std::size_t n = w.deliver_matching(
      [](const envelope& e) { return e.msg.type == msg_type::write_req; });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(w.in_transit().size(), 3u);  // 3 acks remain
  for (const auto& e : w.in_transit()) {
    EXPECT_EQ(e.msg.type, msg_type::write_ack);
  }
}

TEST(World, RunRandomDrainsAndCompletesOps) {
  auto w = make_world();
  rng r(1);
  w.invoke_write("x");
  w.run_random(r);
  EXPECT_TRUE(w.in_transit().empty());
  EXPECT_FALSE(w.writer(0)->write_in_progress());
  EXPECT_EQ(w.hist().ops().size(), 1u);
  EXPECT_TRUE(w.hist().ops()[0].response_time.has_value());
}

TEST(World, CrashedServerNeverReplies) {
  auto w = make_world("abd", 3, 1, 1);
  rng r(2);
  w.crash(server_id(0));
  w.invoke_write("x");
  w.run_random(r);
  // The write completes with the two live servers (quorum S - t = 2).
  EXPECT_FALSE(w.writer(0)->write_in_progress());
  // Messages to the crashed server were consumed without replies: 2 acks.
  EXPECT_EQ(w.messages_delivered(), 4u);  // 2 reqs + 2 acks
}

TEST(World, PartialBroadcastCrash) {
  auto w = make_world("abd", 5, 2, 1);
  w.crash_after_sends(writer_id(0), 2);
  w.invoke_write("torn");
  // Only 2 of 5 write requests made it out; the writer is crashed.
  EXPECT_EQ(w.in_transit().size(), 2u);
  EXPECT_TRUE(w.crashed(writer_id(0)));
}

TEST(World, DropMatchingLosesMessages) {
  auto w = make_world();
  w.invoke_write("x");
  const std::size_t dropped = w.drop_matching(
      [](const envelope& e) { return e.to == server_id(0); });
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(w.in_transit().size(), 2u);
}

TEST(World, TimedRunAdvancesClockMonotonically) {
  auto w = make_world("abd", 3, 1, 1);
  rng r(3);
  uniform_delay d(10, 20);
  w.invoke_write("x");
  const auto t0 = w.now();
  w.run_timed(r, d);
  EXPECT_GT(w.now(), t0);
  EXPECT_FALSE(w.writer(0)->write_in_progress());
  // One round-trip at 10..20 per hop: response within [t0+20, t0+40] plus
  // invocation bookkeeping.
  const auto& op = w.hist().ops()[0];
  EXPECT_GE(*op.response_time - op.invoke_time, 20u);
  EXPECT_LE(*op.response_time - op.invoke_time, 41u);
}

TEST(World, TimedRunRespectsDueOrder) {
  auto w = make_world("abd", 4, 1, 1);
  rng r(4);
  uniform_delay d(5, 5);  // constant delay: FIFO per hop wave
  w.invoke_write("x");
  w.run_timed(r, d);
  w.invoke_read(0);
  w.run_timed(r, d);
  EXPECT_EQ(w.last_read(0)->val, "x");
}

TEST(World, ForkIsDeepAndIndependent) {
  auto w = make_world("fast_swmr", 8, 1, 2);
  rng r(5);
  w.invoke_write("x");
  // Deliver to one server only, then fork.
  w.deliver_matching(
      [](const envelope& e) { return e.to == server_id(0); });
  world w2 = w.fork();
  EXPECT_EQ(w2.in_transit().size(), w.in_transit().size());

  // Finishing the write in the fork does not affect the original.
  rng r2(6);
  w2.run_random(r2);
  EXPECT_FALSE(w2.writer(0)->write_in_progress());
  EXPECT_TRUE(w.writer(0)->write_in_progress());
  EXPECT_FALSE(w.in_transit().empty());

  // And the original can still complete on its own.
  w.run_random(r);
  EXPECT_FALSE(w.writer(0)->write_in_progress());
}

TEST(World, HistoryRecordsIntervalsAndValues) {
  auto w = make_world("abd", 3, 1, 1);
  rng r(7);
  w.invoke_write("a");
  w.run_random(r);
  w.invoke_read(0);
  w.run_random(r);
  const auto& ops = w.hist().ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[0].is_write);
  EXPECT_EQ(ops[0].val, "a");
  EXPECT_FALSE(ops[1].is_write);
  EXPECT_EQ(ops[1].val, "a");
  EXPECT_EQ(ops[1].rounds, 2);  // ABD read: two round-trips
  EXPECT_LT(*ops[0].response_time, ops[1].invoke_time);
}

TEST(World, ReplaceAutomatonSwapsBehaviour) {
  auto w = make_world("abd", 3, 1, 1);
  rng r(8);
  // Replace server 0 with a fresh clone of server 1's type (a benign swap
  // that proves the hook works; byzantine tests use it for real attacks).
  w.replace_automaton(server_id(0),
                      make_protocol("abd")->make_server(w.config(), 0));
  w.invoke_write("x");
  w.run_random(r);
  EXPECT_FALSE(w.writer(0)->write_in_progress());
}

TEST(World, MessagesSentCounterTracksTraffic) {
  auto w = make_world("abd", 3, 1, 1);
  rng r(9);
  w.invoke_write("x");
  w.run_random(r);
  // 3 write_reqs + 3 acks.
  EXPECT_EQ(w.messages_sent(), 6u);
}

TEST(World, RunRandomUntilStopsEarly) {
  auto w = make_world("abd", 3, 1, 1);
  rng r(10);
  w.invoke_write("x");
  const auto steps =
      w.run_random_until(r, [&] { return w.messages_delivered() >= 2; });
  EXPECT_LE(steps, 3u);
  EXPECT_FALSE(w.in_transit().empty());
}

}  // namespace
}  // namespace fastreg::sim
