// Seeded, reproducible randomized stress harness: drives any register
// protocol as a store shard across BOTH transports -- the deterministic
// simulator (adversarial message reordering or timed uniform delays,
// mid-run server crashes, link-level minority partitions with a later
// heal, a live reshard) and the real-socket TCP cluster (pipelined
// client sessions on a hub node, a stopped server, a pause-fault
// partition soak with a later heal, a live reshard) -- and
// verifies every per-key history with the checker the protocol's contract
// calls for. The polynomial MWMR checker makes per-key histories of 10^4+
// operations verifiable, which is the scale where fast-path violations
// that small histories never hit actually show up.
//
// Reproducibility contract: every run is a pure function of
// stress_options::seed. Tests take the seed from FASTREG_STRESS_SEED
// (random otherwise), print it on every failure, and the failing per-key
// history is dumped to a file whose path is part of the failure message,
// so any red run replays bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/atomicity.h"
#include "store/histories.h"

namespace fastreg::benchutil {

struct stress_options {
  /// Shard protocol driven on every shard (registry name).
  std::string protocol{"mwmr"};
  std::uint32_t num_shards{1};
  std::uint32_t num_keys{1};
  std::uint32_t S{5}, t{1}, b{0}, R{2}, W{2};
  /// Signature scheme for fast_bft shards ("" = none).
  std::string sig_scheme{};
  std::uint32_t puts_per_writer{200};
  std::uint32_t gets_per_reader{200};
  std::uint64_t seed{1};
  /// Simulator schedule: false = adversarial random reordering, true =
  /// timed steps with uniform link delays in [delay_lo, delay_hi].
  bool timed{false};
  std::uint64_t delay_lo{5};
  std::uint64_t delay_hi{80};
  /// Crash this many servers (<= t) a third of the way into the run
  /// (sim: world::crash; TCP: node::stop).
  std::uint32_t crash_servers{0};
  /// Restart every crashed server two thirds of the way in (sim:
  /// sim_store::restart_server; TCP: tcp_store::restart_server). With
  /// persist_dir set the rejoining server replays its snapshot + op log
  /// before serving (the crash-RECOVERY schedule); without it the server
  /// rejoins empty, which is only safe because a state-less rejoiner is
  /// indistinguishable from a still-crashed replica within the t budget.
  bool restart_crashed{false};
  /// Partition this many servers (<= t, a minority) from EVERY other
  /// process a third of the way in, and heal two thirds of the way in.
  /// Sim: link-level cuts (world::partition) -- messages stall in
  /// transit and arrive in a burst after the heal. TCP: the partitioned
  /// server's connections are pause-faulted (net::conn_fault::pause) --
  /// bytes queue on both sides and flush at the heal. Either way the
  /// protocols' quorum logic must absorb the stale flood without a
  /// violation. Partitioned servers are taken from the LOW end of the
  /// index range so a combined crash+partition run (crashes take the
  /// high end) exercises disjoint sets.
  std::uint32_t partition_servers{0};
  /// TCP: sliding-window depth of each client's pipelined session, and
  /// the number of driver threads multiplexing all the sessions.
  std::uint32_t pipeline_depth{4};
  std::uint32_t driver_threads{8};
  /// Run one live reshard a third of the way in, concurrent with the
  /// workload. Empty reshard_protocols = keep the same protocol and
  /// change only the shard count (epoch bump + routing change); naming
  /// protocols makes objects move through the full dual-quorum handoff.
  bool reshard{false};
  std::uint32_t reshard_num_shards{0};
  std::vector<std::string> reshard_protocols{};
  /// Non-empty: enable per-server durable state (src/persist/) rooted at
  /// this directory. Fsync policy comes from FASTREG_FSYNC (default
  /// interval); crash-then-restart schedules replay from here.
  std::string persist_dir{};
  /// Tag used in dump file names and failure messages.
  std::string label{"stress"};
};

struct stress_report {
  std::uint64_t seed{0};
  bool all_complete{false};
  /// Client-visible op failures (TCP timeouts); always 0 on the sim.
  std::uint64_t op_failures{0};
  std::size_t total_ops{0};
  std::size_t max_key_ops{0};
  epoch_t final_epoch{0};
  /// Per-key verification under the protocol's contract checker.
  checker::check_result check{};
  /// Set when !check.ok: file holding the failing key's full history.
  std::string dump_path{};
  /// Set when !check.ok and the flight recorder was on (FASTREG_OBS=
  /// record): one per-node recorder dump next to dump_path, pre-filtered
  /// to the failing key's object. Feed them to tools/trace_merge for the
  /// causally-ordered timeline of the violation.
  std::vector<std::string> recorder_paths{};

  [[nodiscard]] bool ok() const {
    return check.ok && all_complete && op_failures == 0;
  }
  /// One-line reproduction recipe for failure messages.
  [[nodiscard]] std::string describe() const;
};

/// The checker a shard protocol's history contract demands: mwmr for
/// multi-writer runs, conditions (1)-(3) for "regular", the exact SWMR
/// check otherwise.
[[nodiscard]] store::verify_mode stress_verify_mode(
    const stress_options& opt);

/// Runs the workload on the deterministic simulator.
[[nodiscard]] stress_report run_sim_stress(const stress_options& opt);

/// Runs the workload on the localhost TCP cluster: every client is an
/// actor on one hub node, each drives a pipelined session
/// (pipeline_depth ops in flight) through the unified async front-end,
/// and min(W+R, driver_threads) driver threads multiplex the sessions.
[[nodiscard]] stress_report run_tcp_stress(const stress_options& opt);

/// FASTREG_STRESS_SEED when set, otherwise fresh entropy. Print the seed
/// on every failure so the run can be replayed.
[[nodiscard]] std::uint64_t stress_seed_from_env();

/// `base` scaled by FASTREG_STRESS_ITERS (default 1): the knob nightly
/// soak jobs raise ~20x without touching the tests.
[[nodiscard]] std::uint32_t stress_iters(std::uint32_t base);

}  // namespace fastreg::benchutil
