// The epoch-versioned shard map: the store's single mutable control-plane
// cell. Holds the latest installed shard_map (immutable, shared); install
// replaces it with the next epoch's map. Clients pull from it lazily when
// a server reply reveals a newer epoch, so publication here is the point
// after which the fleet converges on the new routing.
//
// In a real deployment this would be a replicated configuration service;
// here it is an in-process cell shared by every participant of one store
// deployment, which is faithful enough to exercise the data-plane epoch
// protocol (fencing, drains, retries) end to end.
#pragma once

#include <memory>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "store/shard_map.h"

namespace fastreg::reconfig {

class versioned_map {
 public:
  explicit versioned_map(std::shared_ptr<const store::shard_map> initial)
      : cur_(std::move(initial)) {
    FASTREG_EXPECTS(cur_ != nullptr);
  }

  [[nodiscard]] std::shared_ptr<const store::shard_map> get() const {
    std::lock_guard<std::mutex> lk(mu_);
    return cur_;
  }

  [[nodiscard]] epoch_t epoch() const { return get()->epoch(); }

  /// Publishes the next epoch's map. Epochs advance by exactly one: the
  /// coordinator serializes reconfigurations.
  void install(std::shared_ptr<const store::shard_map> next) {
    FASTREG_EXPECTS(next != nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    FASTREG_EXPECTS(next->epoch() == cur_->epoch() + 1);
    cur_ = std::move(next);
  }

  /// Pull-side view handed to store clients.
  [[nodiscard]] store::map_source source() const {
    return [this] { return get(); };
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const store::shard_map> cur_;
};

}  // namespace fastreg::reconfig
