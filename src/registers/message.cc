#include "registers/message.h"

#include "registers/config.h"

namespace fastreg {

std::string system_config::describe() const {
  std::string out = "S=" + std::to_string(servers) +
                    " t=" + std::to_string(t_failures);
  if (b_malicious != 0) out += " b=" + std::to_string(b_malicious);
  out += " R=" + std::to_string(readers);
  if (writers != 1) out += " W=" + std::to_string(writers);
  return out;
}

const char* to_string(msg_type t) {
  switch (t) {
    case msg_type::write_req:
      return "WRITE";
    case msg_type::write_ack:
      return "WRITEACK";
    case msg_type::read_req:
      return "READ";
    case msg_type::read_ack:
      return "READACK";
    case msg_type::wb_req:
      return "WB";
    case msg_type::wb_ack:
      return "WBACK";
    case msg_type::query_req:
      return "QUERY";
    case msg_type::query_ack:
      return "QUERYACK";
    case msg_type::gossip:
      return "GOSSIP";
    case msg_type::epoch_nack:
      return "EPOCHNACK";
    case msg_type::state_req:
      return "STATE";
    case msg_type::state_ack:
      return "STATEACK";
    case msg_type::seed_req:
      return "SEED";
    case msg_type::seed_ack:
      return "SEEDACK";
    case msg_type::fetch_req:
      return "FETCH";
    case msg_type::fetch_ack:
      return "FETCHACK";
    case msg_type::stats_req:
      return "STATS";
    case msg_type::stats_ack:
      return "STATSACK";
  }
  return "?";
}

std::vector<std::uint8_t> signed_payload(object_id obj, ts_t ts,
                                         std::int32_t wid, const value_t& val,
                                         const value_t& prev) {
  byte_writer w;
  w.put_u64(obj);
  w.put_i64(ts);
  w.put_i32(wid);
  w.put_string(val);
  w.put_string(prev);
  return w.take();
}

std::vector<std::uint8_t> signed_payload(const message& m) {
  return signed_payload(m.obj, m.ts, m.wid, m.val, m.prev);
}

void encode_process_id(byte_writer& w, const process_id& p) {
  w.put_u8(static_cast<std::uint8_t>(p.r));
  w.put_u32(p.index);
}

std::optional<process_id> decode_process_id(byte_reader& r) {
  const auto role_byte = r.get_u8();
  const auto index = r.get_u32();
  if (!role_byte || !index) return std::nullopt;
  if (*role_byte > static_cast<std::uint8_t>(role::server)) return std::nullopt;
  return process_id{static_cast<role>(*role_byte), *index};
}

void encode_message(byte_writer& w, const message& m) {
  w.put_u8(static_cast<std::uint8_t>(m.type));
  w.put_u64(m.obj);
  w.put_u64(m.epoch);
  w.put_u32(m.attempt);
  w.put_u8(m.mig ? 1 : 0);
  w.put_u64(m.trace);
  w.put_u32(m.span);
  w.put_i64(m.ts);
  w.put_i32(m.wid);
  w.put_string(m.val);
  w.put_string(m.prev);
  w.put_u64(m.seen.bits());
  w.put_u64(m.rcounter);
  w.put_bytes(std::span<const std::uint8_t>(m.sig.data(), m.sig.size()));
  encode_process_id(w, m.origin);
}

std::optional<message> decode_message(byte_reader& r) {
  message m;
  const auto type = r.get_u8();
  if (!type || *type < 1 ||
      *type > static_cast<std::uint8_t>(msg_type::stats_ack)) {
    return std::nullopt;
  }
  m.type = static_cast<msg_type>(*type);
  const auto obj = r.get_u64();
  const auto epoch = r.get_u64();
  const auto attempt = r.get_u32();
  const auto mig = r.get_u8();
  const auto trace = r.get_u64();
  const auto span = r.get_u32();
  const auto ts = r.get_i64();
  const auto wid = r.get_i32();
  auto val = r.get_string();
  auto prev = r.get_string();
  const auto seen_bits = r.get_u64();
  const auto rcounter = r.get_u64();
  auto sig = r.get_bytes();
  const auto origin = decode_process_id(r);
  if (!obj || !epoch || !attempt || !mig || !trace || !span || !ts || !wid ||
      !val || !prev || !seen_bits || !rcounter || !sig || !origin) {
    return std::nullopt;
  }
  m.obj = *obj;
  m.epoch = *epoch;
  m.attempt = *attempt;
  m.mig = *mig != 0;
  m.trace = *trace;
  m.span = static_cast<std::uint16_t>(*span);
  m.ts = *ts;
  m.wid = *wid;
  m.val = std::move(*val);
  m.prev = std::move(*prev);
  m.seen = seen_set{*seen_bits};
  m.rcounter = *rcounter;
  m.sig = std::move(*sig);
  m.origin = *origin;
  return m;
}

}  // namespace fastreg
