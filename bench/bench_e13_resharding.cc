// E13 -- live resharding: throughput and tail latency THROUGH an online
// reconfiguration (shard count change + per-shard protocol switch), on
// both transports, with per-key atomicity verified across the epoch
// boundary.
//
// Part 1 (timed simulator): a Zipf hot-key closed loop runs while the
// coordinator reshards 4 shards of abd into 6 shards of fast_swmr+abd --
// the "promote the hot keys to one-round reads" move the ROADMAP asks
// for. Ops are classified before/during/after by their position relative
// to the reconfiguration window; the drop during the drain and the
// latency win after it are the headline numbers.
//
// Part 2 (timed simulator, crashed): the same workload and reshard, but
// one server is killed the moment the reconfiguration starts and stays
// dead. Quorum seeding + the servers' lazy seed fetch keep the migration
// (and every op parked or held behind a drain) live -- the pre-PR-3
// full-fleet seed deadlocked here. The before/during/after percentiles
// put numbers behind that liveness claim.
//
// Part 3 (localhost TCP): same reshard on real sockets with concurrently
// operating client threads, wall-clock microseconds.
//
// Part 4 (timed simulator, durable): a server with per-server durability
// (src/persist) is killed mid-load, the fleet reshards WITHOUT it, and it
// restarts afterwards. Its on-disk state carries the old epoch, so the
// rejoin is epoch-FENCED: the state (and its disk backing) is discarded
// and the server re-bootstraps through the lazy seed-fetch path. One row
// per fsync policy puts a number on that worst-case recovery (replay +
// discard) next to E9's happy-path replay.
//
// Every history is checked per key; the "violations" column must be 0.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "benchutil/stats.h"
#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "common/rng.h"
#include "persist/durable.h"
#include "reconfig/control.h"
#include "reconfig/coordinator.h"
#include "store/sim_store.h"
#include "store/tcp_store.h"

using namespace fastreg;
using namespace fastreg::benchutil;

namespace {

std::vector<std::string> make_keys(std::uint32_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  return keys;
}

struct phase_window {
  stats get_lat;
  stats put_lat;
  std::uint64_t ops{0};
  double span{0};  // ticks or seconds

  [[nodiscard]] double rate(double scale) const {
    return span > 0 ? static_cast<double>(ops) * scale / span : 0;
  }
};

void add_op(phase_window& w, bool is_put, double lat) {
  ++w.ops;
  (is_put ? w.put_lat : w.get_lat).add(lat);
}

void print_phases(table& t, const char* transport, phase_window (&w)[3],
                  double rate_scale, std::size_t violations) {
  static const char* names[3] = {"before", "during", "after"};
  for (int p = 0; p < 3; ++p) {
    t.add_row({transport, names[p], std::to_string(w[p].ops),
               fmt(w[p].rate(rate_scale), 1), fmt(w[p].get_lat.p50()),
               fmt(w[p].get_lat.p99()), fmt(w[p].put_lat.p50()),
               fmt(w[p].put_lat.p99()), std::to_string(violations)});
  }
}

// ------------------------------------------------------------ simulator --

void run_sim_part(table& t, bool crash_one) {
  const std::uint32_t num_keys = 32;
  const auto keys = make_keys(num_keys);
  store::store_config cfg;
  cfg.base.servers = 7;
  cfg.base.t_failures = 1;
  cfg.base.readers = 3;
  cfg.base.writers = 1;
  cfg.num_shards = 4;
  cfg.shard_protocols = {"abd"};
  store::sim_store s(cfg);

  rng r(1234);
  sim::uniform_delay delays(50, 150);
  const zipf_sampler zipf(num_keys, 1.1);

  reconfig::sim_control ctl(s);
  reconfig::coordinator coord(ctl, keys);
  const reconfig::reconfig_plan plan{6, {"fast_swmr", "abd"}};

  std::uint32_t puts_left = 400;
  std::vector<std::uint32_t> gets_left(cfg.base.R(), 400);
  std::uint64_t put_seq = 0;
  bool started = false;
  std::uint64_t t_start = 0, t_done = 0;
  std::uint64_t guard = 0;

  auto quota_spent = [&] {
    std::uint32_t left = puts_left;
    for (const auto g : gets_left) left += g;
    return 400u * 4u - left;
  };

  for (;;) {
    FASTREG_CHECK(++guard < 100'000'000);
    if (!started && quota_spent() >= 500) {
      started = true;
      t_start = s.world().now();
      // The crash variant kills a server AS the reshard begins; it stays
      // dead through the drains and the rest of the run, so every
      // handoff and every post-crash op runs on quorums of 6.
      if (crash_one) s.world().crash(server_id(cfg.base.S() - 1));
      FASTREG_CHECK(coord.start(s.shards(), plan));
    }
    if (started && !coord.done()) {
      coord.step();
      if (coord.done()) t_done = s.world().now();
    }
    bool invoked = false;
    if (puts_left > 0 && !s.writer_client(0).op_in_progress()) {
      --puts_left;
      const auto& key = keys[zipf.sample(r)];
      s.invoke_put(0, key, "v" + std::to_string(++put_seq));
      invoked = true;
    }
    for (std::uint32_t i = 0; i < cfg.base.R(); ++i) {
      if (gets_left[i] == 0 || s.reader_client(i).op_in_progress()) continue;
      --gets_left[i];
      s.invoke_get(i, keys[zipf.sample(r)]);
      invoked = true;
    }
    if (s.world().in_transit().empty()) {
      if (invoked) continue;
      if (started && !coord.done()) continue;  // control actions pending
      break;
    }
    s.run_timed(r, delays, /*max_steps=*/1);
  }
  FASTREG_CHECK(started && coord.done());

  // Classify each completed op against the reconfiguration window.
  phase_window w[3];
  bool all_complete = true;
  for (const auto& [key, h] : s.histories().all()) {
    for (const auto& op : h.ops()) {
      if (!op.response_time) {
        all_complete = false;
        continue;
      }
      const int p = *op.response_time <= t_start ? 0
                    : op.invoke_time >= t_done   ? 2
                                                 : 1;
      add_op(w[p], op.is_write,
             static_cast<double>(*op.response_time - op.invoke_time));
    }
  }
  w[0].span = static_cast<double>(t_start);
  w[1].span = static_cast<double>(t_done - t_start);
  w[2].span = static_cast<double>(s.world().now() - t_done);

  const auto res = s.histories().verify();
  const std::size_t violations = (res.ok && all_complete) ? 0 : 1;
  const char* label = crash_one ? "sim-crash" : "sim";
  print_phases(t, label, w, 1000.0, violations);
  std::printf("%s reshard: epoch %llu, %zu/%zu keys migrated (%zu "
              "discovered), reconfig window %llu ticks%s%s\n",
              label,
              static_cast<unsigned long long>(coord.stats().new_epoch),
              coord.stats().keys_moved, coord.stats().keys_considered,
              coord.stats().keys_discovered,
              static_cast<unsigned long long>(t_done - t_start),
              crash_one ? ", 1 of 7 servers down throughout" : "",
              res.ok ? "" : " -- ATOMICITY VIOLATION (see below)");
  if (!res.ok) std::printf("  %s\n", res.error.c_str());
}

// ------------------------------------------------------------------ TCP --

void run_tcp_part(table& t) {
  const std::uint32_t num_keys = 16;
  const auto keys = make_keys(num_keys);
  store::store_config cfg;
  cfg.base.servers = 5;
  cfg.base.t_failures = 1;
  cfg.base.readers = 2;
  cfg.base.writers = 1;
  cfg.num_shards = 4;
  cfg.shard_protocols = {"abd"};
  store::tcp_store ts(cfg);
  ts.start();
  for (const auto& k : keys) (void)ts.put(0, k, k + ":0");

  struct sample {
    double done_s;  // completion time, seconds since bench start
    double lat_us;
    bool is_put;
  };
  std::vector<std::vector<sample>> per_thread(1 + cfg.base.R());
  const auto bench_t0 = std::chrono::steady_clock::now();
  auto since_start = [&](std::chrono::steady_clock::time_point tp) {
    return std::chrono::duration<double>(tp - bench_t0).count();
  };

  std::atomic<bool> stop{false};
  const zipf_sampler zipf(num_keys, 1.1);
  std::thread writer([&] {
    rng r(7);
    for (std::uint64_t n = 1; !stop.load(); ++n) {
      const auto& key = keys[zipf.sample(r)];
      const auto s0 = std::chrono::steady_clock::now();
      if (!ts.put(0, key, "w" + std::to_string(n))) continue;
      const auto s1 = std::chrono::steady_clock::now();
      per_thread[0].push_back(
          {since_start(s1),
           std::chrono::duration<double, std::micro>(s1 - s0).count(),
           true});
    }
  });
  std::vector<std::thread> readers;
  for (std::uint32_t i = 0; i < cfg.base.R(); ++i) {
    readers.emplace_back([&, i] {
      rng r(100 + i);
      while (!stop.load()) {
        const auto& key = keys[zipf.sample(r)];
        const auto s0 = std::chrono::steady_clock::now();
        const auto res = ts.get(i, key);
        const auto s1 = std::chrono::steady_clock::now();
        if (!res) continue;
        per_thread[1 + i].push_back(
            {since_start(s1),
             std::chrono::duration<double, std::micro>(s1 - s0).count(),
             false});
      }
    });
  }

  // Let the "before" window accumulate, then reshard live.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  reconfig::tcp_control ctl(ts);
  reconfig::coordinator coord(ctl, keys);
  const double t_start = since_start(std::chrono::steady_clock::now());
  FASTREG_CHECK(
      coord.start(ts.proto().shards(), {6, {"fast_swmr", "abd"}}));
  while (!coord.done()) {
    coord.step();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const double t_done = since_start(std::chrono::steady_clock::now());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  writer.join();
  for (auto& th : readers) th.join();
  const double t_end = since_start(std::chrono::steady_clock::now());

  phase_window w[3];
  for (const auto& samples : per_thread) {
    for (const auto& sm : samples) {
      const int p = sm.done_s <= t_start ? 0 : sm.done_s >= t_done ? 2 : 1;
      add_op(w[p], sm.is_put, sm.lat_us);
    }
  }
  w[0].span = t_start;
  w[1].span = t_done - t_start;
  w[2].span = t_end - t_done;

  const auto res = ts.gather().verify();
  const std::size_t violations = res.ok ? 0 : 1;
  print_phases(t, "tcp", w, 1.0, violations);
  std::printf("tcp reshard: epoch %llu, %zu/%zu keys migrated, reconfig "
              "window %.1f ms%s\n",
              static_cast<unsigned long long>(coord.stats().new_epoch),
              coord.stats().keys_moved, coord.stats().keys_considered,
              (t_done - t_start) * 1e3,
              res.ok ? "" : " -- ATOMICITY VIOLATION (see below)");
  if (!res.ok) std::printf("  %s\n", res.error.c_str());
  ts.stop();
}

// ---------------------------------------- rejoin fenced by a reshard --

void run_rejoin_part(table& t, persist::fsync_policy policy) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fastreg_e13_rejoin_" + std::to_string(::getpid()) +
                    "_" + std::string(persist::to_string(policy)));
  std::filesystem::create_directories(dir);
  const std::uint32_t num_keys = 16;
  const auto keys = make_keys(num_keys);
  store::store_config cfg;
  cfg.base.servers = 5;
  cfg.base.t_failures = 1;
  cfg.base.readers = 2;
  cfg.base.writers = 1;
  cfg.num_shards = 2;
  cfg.shard_protocols = {"abd"};
  cfg.persist.dir = dir.string();
  cfg.persist.fsync = policy;
  store::sim_store s(cfg);
  rng r(99);
  const zipf_sampler zipf(num_keys, 1.1);

  const std::uint32_t crash_index = cfg.base.S() - 1;
  std::uint32_t puts_left = 300;
  std::vector<std::uint32_t> gets_left(cfg.base.R(), 300);
  std::uint64_t put_seq = 0, guard = 0, invoked = 0;
  bool crashed = false, resharded = false;
  std::optional<reconfig::sim_control> ctl;
  std::optional<reconfig::coordinator> coord;
  for (;;) {
    FASTREG_CHECK(++guard < 100'000'000);
    if (!crashed && invoked >= 200) {
      crashed = true;
      s.world().crash(server_id(crash_index));
    }
    // Reshard while the server is down: its durable epoch goes stale.
    if (crashed && !resharded && invoked >= 400) {
      resharded = true;
      ctl.emplace(s);
      coord.emplace(*ctl, keys);
      FASTREG_CHECK(coord->start(s.shards(), {3, {"abd"}}));
    }
    const bool coord_active = coord.has_value() && !coord->done();
    if (coord_active) coord->step();
    bool invoked_now = false;
    if (puts_left > 0 && !s.writer_client(0).op_in_progress()) {
      --puts_left;
      ++invoked;
      invoked_now = true;
      s.invoke_put(0, keys[zipf.sample(r)], "v" + std::to_string(++put_seq));
    }
    for (std::uint32_t i = 0; i < cfg.base.R(); ++i) {
      if (gets_left[i] == 0 || s.reader_client(i).op_in_progress()) continue;
      --gets_left[i];
      ++invoked;
      invoked_now = true;
      s.invoke_get(i, keys[zipf.sample(r)]);
    }
    if (s.world().in_transit().empty()) {
      if (invoked_now || coord_active) continue;
      break;
    }
    s.run_random(r, /*max_steps=*/1);
  }
  FASTREG_CHECK(coord.has_value() && coord->done());

  const auto log_b = [&] {
    std::error_code ec;
    const auto n = std::filesystem::file_size(
        persist::server_durability::log_path_for(dir.string(), crash_index),
        ec);
    return ec ? std::uint64_t{0} : static_cast<std::uint64_t>(n);
  }();
  const auto rec_t0 = std::chrono::steady_clock::now();
  auto& ns = s.restart_server(crash_index);
  const double recover_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - rec_t0)
          .count();
  const auto res = s.histories().verify();
  t.add_row({persist::to_string(policy), std::to_string(log_b),
             fmt(recover_us, 1), std::to_string(ns.recovered_objects()),
             std::to_string(
                 static_cast<unsigned long long>(s.shards()->epoch())),
             res.ok ? "0" : "1"});
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

int main() {
  std::printf("E13: live resharding -- 4 shards of abd -> 6 shards of "
              "fast_swmr+abd under a Zipf(1.1) hot-key closed loop.\n"
              "sim latencies in ticks (rate ops/ktick); tcp latencies in "
              "microseconds (rate ops/s).\n"
              "sim-crash kills one of the 7 servers as the reshard starts "
              "(dead for the rest of the run).\n\n");
  table t({"part", "phase", "ops", "rate", "get_p50", "get_p99", "put_p50",
           "put_p99", "violations"});
  run_sim_part(t, /*crash_one=*/false);
  run_sim_part(t, /*crash_one=*/true);
  run_tcp_part(t);
  std::printf("\n");
  t.print();
  std::printf(
      "\nexpected shape: 'after' get p50 drops for keys promoted to "
      "fast_swmr (1 RTT vs abd's 2); 'during' shows the drain's tail "
      "(held ops complete when their key's handoff lands); sim-crash "
      "matches sim's shape -- quorum seeding keeps the migration and "
      "every held op live with a server down (the old full-fleet seed "
      "deadlocked here) -- at a slightly higher tail (quorums of 6 wait "
      "for the slowest of 6); violations stays 0 -- per-key atomicity "
      "holds across the epoch boundary, crash or no crash.\n");

  std::printf("\nE13 part 4: durable server rejoins AFTER a reshard moved "
              "the epoch on (2 -> 3 abd shards while it was down)\n\n");
  table rj({"fsync", "stale_log_bytes", "recover_us", "recovered_objs",
            "epoch", "violations"});
  for (const auto policy :
       {persist::fsync_policy::never, persist::fsync_policy::interval,
        persist::fsync_policy::every_op}) {
    run_rejoin_part(rj, policy);
  }
  rj.print();
  std::printf(
      "\nexpected: recovered_objs = 0 everywhere -- the on-disk state "
      "carries the pre-reshard epoch, so the fence discards it and wipes "
      "the backing; the server re-bootstraps via lazy seed fetch and "
      "violations stays 0. recover_us is the replay-then-discard bill, "
      "flat across fsync policies (recovery only reads).\n");
  return 0;
}
