#include "store/tcp_store.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace fastreg::store {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

tcp_store::tcp_store(store_config cfg, net::node_options nopt,
                     net::cluster_options copt)
    : proto_(std::move(cfg)),
      cluster_(proto_.config().base, proto_, nopt, copt) {}

std::optional<std::vector<store_result>> tcp_store::run_ops(
    const process_id& client_pid,
    const std::vector<std::pair<std::string, value_t>>& kvs, bool is_put,
    std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(!kvs.empty());
  net::node& n = cluster_.client_node(client_pid);
  const std::size_t actor = cluster_.client_actor(client_pid);
  const std::uint64_t t0 = now_ns();
  // Keys whose previous op timed out and is still in flight cannot be
  // re-begun (precondition); skip them -- the call reports failure but
  // the process must not abort on the reactor thread.
  auto skipped = std::make_shared<std::vector<std::string>>();
  const bool wait_ok = n.blocking_op(
      actor,
      [&kvs, is_put, skipped](automaton& a, netout& net) {
        auto& c = dynamic_cast<client&>(a);
        for (const auto& [key, v] : kvs) {
          if (c.has_pending(key)) {
            skipped->push_back(key);
            continue;
          }
          if (is_put) {
            c.begin_put(key, v);
          } else {
            c.begin_get(key);
          }
        }
        c.flush(net);
      },
      timeout);
  // Harvest whatever completed, on the reactor thread so late server acks
  // cannot race the drain. The haul may include stale completions of ops
  // a previous timed-out call abandoned.
  std::vector<store_result> results;
  n.run_on_reactor(actor, [&results](automaton& a) {
    results = dynamic_cast<client&>(a).take_completions();
  });
  const std::uint64_t t1 = now_ns();

  // Log this call's started ops first (incomplete), remembering their
  // indices so stale completions can be told apart from fresh ones.
  // Skipped keys are NOT logged: no protocol op ran, and their abandoned
  // older entry is still the open op for that (client, key).
  std::vector<std::size_t> started;
  started.reserve(kvs.size());
  for (const auto& [key, v] : kvs) {
    if (std::find(skipped->begin(), skipped->end(), key) !=
        skipped->end()) {
      continue;
    }
    started.push_back(log_.open(client_pid, key, is_put, v, t0));
  }
  const auto closed = log_.close(client_pid, results, t1);
  std::vector<store_result> fresh;
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (std::find(started.begin(), started.end(), closed[k]) !=
        started.end()) {
      fresh.push_back(std::move(results[k]));
    }
  }
  if (!wait_ok || !skipped->empty() || fresh.size() < started.size()) {
    return std::nullopt;
  }
  return fresh;
}

std::optional<store_result> tcp_store::get(std::uint32_t reader_index,
                                           const std::string& key,
                                           std::chrono::milliseconds timeout) {
  auto res = multi_get(reader_index, {key}, timeout);
  if (!res || res->empty()) return std::nullopt;
  return std::move(res->front());
}

bool tcp_store::put(std::uint32_t writer_index, const std::string& key,
                    value_t v, std::chrono::milliseconds timeout) {
  return multi_put(writer_index, {{key, std::move(v)}}, timeout);
}

std::optional<std::vector<store_result>> tcp_store::multi_get(
    std::uint32_t reader_index, const std::vector<std::string>& keys,
    std::chrono::milliseconds timeout) {
  std::vector<std::pair<std::string, value_t>> kvs;
  kvs.reserve(keys.size());
  for (const auto& k : keys) kvs.emplace_back(k, value_t{});
  return run_ops(reader_id(reader_index), kvs, /*is_put=*/false, timeout);
}

bool tcp_store::multi_put(
    std::uint32_t writer_index,
    const std::vector<std::pair<std::string, value_t>>& kvs,
    std::chrono::milliseconds timeout) {
  return run_ops(writer_id(writer_index), kvs, /*is_put=*/true, timeout)
      .has_value();
}

std::string tcp_store::scrape(std::uint32_t server_index,
                              std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(server_index < cluster_.book().server_ports.size());
  net::unique_fd fd =
      net::connect_to(cluster_.book().server_ports[server_index]);
  if (!fd.valid()) return {};
  // Introduce the scraper under a reader id far outside any real
  // configuration: the server routes the stats_ack back over the
  // connection this id said hello on, and no live reader's reply route
  // is disturbed.
  const process_id scraper = reader_id(1'000'000u + server_index);
  auto bytes = net::encode_hello(scraper);
  message req;
  req.type = msg_type::stats_req;
  req.rcounter = 1;
  const auto frame = net::encode_msg_frame(scraper, req);
  bytes.insert(bytes.end(), frame.begin(), frame.end());

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const auto remaining_ms = [&]() -> int {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    return static_cast<int>(std::max<std::int64_t>(0, left.count()));
  };

  // Non-blocking connect: wait for writability, then push the request.
  std::size_t off = 0;
  while (off < bytes.size()) {
    pollfd p{fd.get(), POLLOUT, 0};
    const int pr = ::poll(&p, 1, remaining_ms());
    if (pr <= 0) return {};
    const ssize_t n =
        ::write(fd.get(), bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    return {};
  }

  net::frame_buffer in;
  std::string dump;
  bool got = false;
  while (!got) {
    pollfd p{fd.get(), POLLIN, 0};
    const int pr = ::poll(&p, 1, remaining_ms());
    if (pr <= 0) return {};
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd.get(), buf, sizeof buf);
    if (n == 0) return {};  // server closed without answering
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return {};
    }
    in.drain(buf, static_cast<std::size_t>(n), [&](net::frame&& f) {
      if (f.kind == net::frame_kind::msg && f.msg.has_value() &&
          f.msg->type == msg_type::stats_ack) {
        dump = std::move(f.msg->val);
        got = true;
      }
    });
    if (in.corrupt()) return {};
  }
  return dump;
}

}  // namespace fastreg::store
