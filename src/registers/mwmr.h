// Multi-writer multi-reader atomic register in the style of Lynch and
// Shvartsman (FTCS 1997), the baseline for Section 7.
//
//  * write: phase 1 queries S - t servers for the highest (num, wid)
//    timestamp; phase 2 writes (max_num + 1, own wid) to S - t servers.
//    TWO round-trips.
//  * read: phase 1 collects (ts, val) from S - t servers and picks the
//    lexicographic maximum; phase 2 writes it back. TWO round-trips.
//
// Proposition 11 proves no implementation can do better: with W >= 2,
// R >= 2, t >= 1, some read or write must take more than one round-trip.
// The adversary module contains the executable version of that proof, and
// naive_fast_mwmr below is the strawman it breaks.
#pragma once

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "registers/abd.h"
#include "registers/automaton.h"

namespace fastreg {

class mwmr_writer final : public automaton, public writer_iface {
 public:
  mwmr_writer(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return writer_id(index_); }

  void invoke_write(netout& net, value_t v) override;
  [[nodiscard]] bool write_in_progress() const override {
    return phase_ != phase::idle;
  }
  [[nodiscard]] std::uint64_t writes_completed() const override {
    return completed_;
  }
  [[nodiscard]] int last_write_rounds() const override { return 2; }

 private:
  enum class phase { idle, query, write };

  system_config cfg_;
  std::uint32_t index_;
  phase phase_{phase::idle};
  std::uint64_t rcounter_{0};
  value_t pending_val_{};
  ts_t max_num_{0};
  std::unordered_set<std::uint32_t> acks_{};
  std::uint64_t completed_{0};
};

/// Same two-phase structure as abd_reader but with lexicographic (num, wid)
/// timestamps so concurrent writers are totally ordered.
class mwmr_reader final : public automaton, public reader_iface {
 public:
  mwmr_reader(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return reader_id(index_);
  }

  void invoke_read(netout& net) override;
  [[nodiscard]] bool read_in_progress() const override {
    return phase_ != phase::idle;
  }
  [[nodiscard]] const std::optional<read_result>& last_read() const override {
    return last_result_;
  }
  [[nodiscard]] std::uint64_t reads_completed() const override {
    return completed_;
  }

 private:
  enum class phase { idle, query, write_back };

  system_config cfg_;
  std::uint32_t index_;
  phase phase_{phase::idle};
  std::uint64_t rcounter_{0};
  wts_t best_ts_{};
  value_t best_val_{};
  std::unordered_set<std::uint32_t> acks_{};
  std::optional<read_result> last_result_{};
  std::uint64_t completed_{0};
};

class mwmr_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "mwmr"; }
  [[nodiscard]] bool multi_writer() const override { return true; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return majority_feasible(cfg.S(), cfg.t());
  }
  [[nodiscard]] int read_rounds() const override { return 2; }
  [[nodiscard]] int write_rounds() const override { return 2; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

/// Strawman "fast" MWMR candidate for the Proposition 11 construction:
/// every writer uses a local counter with writer-id tiebreak and one-round
/// writes; readers return the lexicographic quorum maximum in one round.
/// It is wait-free and fast -- and not atomic, as the adversary shows.
class naive_fast_mwmr_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "naive_fast_mwmr"; }
  [[nodiscard]] bool multi_writer() const override { return true; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    // Claims feasibility whenever a majority is correct; Proposition 11
    // shows the claim is false (the protocol is not atomic).
    return majority_feasible(cfg.S(), cfg.t());
  }
  [[nodiscard]] int read_rounds() const override { return 1; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

/// A second strawman with *last-write-wins* servers: on equal timestamp
/// numbers the server keeps the most recently received value instead of
/// tie-breaking by writer id. This one passes property P1 on the
/// sequential endpoint runs, so the Proposition 11 construction has to
/// find the flip point i1 and derive the P2 violation from the two
/// extended runs run'/run'' -- the full argument of Section 7.
class naive_fast_mwmr_lww_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override {
    return "naive_fast_mwmr_lww";
  }
  [[nodiscard]] bool multi_writer() const override { return true; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return majority_feasible(cfg.S(), cfg.t());
  }
  [[nodiscard]] int read_rounds() const override { return 1; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

/// Last-write-wins replica: adopts on (num, wid) strictly greater OR on
/// equal num (regardless of wid). Used only by the LWW strawman.
class lww_server final : public automaton, public seedable {
 public:
  lww_server(system_config cfg, std::uint32_t index);
  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return server_id(index_);
  }

  [[nodiscard]] register_snapshot peek_state() const override {
    return {ts_.num, ts_.wid, val_, val_, {}};
  }
  void seed_state(const register_snapshot& s) override {
    ts_ = {s.ts, s.wid};
    val_ = s.val;
  }

 private:
  system_config cfg_;
  std::uint32_t index_;
  wts_t ts_{};
  value_t val_{};
};

/// One-round MWMR writer used by the strawmen.
class naive_mwmr_writer final : public automaton, public writer_iface {
 public:
  naive_mwmr_writer(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return writer_id(index_); }

  void invoke_write(netout& net, value_t v) override;
  [[nodiscard]] bool write_in_progress() const override { return pending_; }
  [[nodiscard]] std::uint64_t writes_completed() const override {
    return completed_;
  }
  [[nodiscard]] int last_write_rounds() const override { return 1; }
  void seed_writer(const register_snapshot& migrated) override {
    ts_ = std::max(ts_, migrated.ts);
  }

 private:
  system_config cfg_;
  std::uint32_t index_;
  ts_t ts_{0};
  bool pending_{false};
  std::uint64_t rcounter_{0};
  std::unordered_set<std::uint32_t> acks_{};
  std::uint64_t completed_{0};
};

}  // namespace fastreg
