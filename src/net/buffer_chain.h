// Outbound byte stream as a chain of recycled fixed-capacity blocks.
//
// The zero-copy wire path encodes frames DIRECTLY into the chain's tail
// block (frame encoders reserve exactly, then append), so a burst of
// frames to one connection accumulates contiguously with no per-frame
// byte-vector and no memmove of unsent bytes. The whole chain is handed
// to the kernel as one writev (fill_iovec); a short write advances the
// chain in place (consume) and the next flush resumes mid-block.
// Fully-drained blocks are recycled through a small freelist, so the
// steady state allocates nothing.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <vector>

namespace fastreg::net {

class buffer_chain {
 public:
  /// Default block capacity. Frames larger than this get a block of their
  /// own exact size (rare: only near-max_frame_bytes batches).
  static constexpr std::size_t block_bytes = 64 * 1024;
  /// Freelist cap: bounds idle memory to max_spare_blocks * block_bytes
  /// per connection.
  static constexpr std::size_t max_spare_blocks = 4;

  /// The buffer to encode `upcoming` more bytes into: the current tail
  /// block when its remaining capacity fits them, otherwise a fresh
  /// (recycled when possible) block. Append exactly at the returned
  /// vector's end; the reference is invalidated by the next chain call.
  [[nodiscard]] std::vector<std::uint8_t>& tail_for(std::size_t upcoming);

  [[nodiscard]] bool empty() const { return blocks_.empty(); }
  /// Unsent bytes across all blocks.
  [[nodiscard]] std::size_t bytes() const;

  /// Fills up to `max` iovecs with the unsent ranges, front first.
  /// Returns the number filled (0 on an empty chain: nothing to write,
  /// callers skip the syscall entirely).
  [[nodiscard]] std::size_t fill_iovec(struct iovec* iov,
                                       std::size_t max) const;

  /// Marks `n` bytes from the front as written (writev's return value;
  /// possibly a SHORT write ending mid-block -- the remainder stays put
  /// and the next fill_iovec resumes from it). Drained blocks are
  /// recycled onto the freelist.
  void consume(std::size_t n);

  /// Drops all unsent bytes (connection teardown), keeping the freelist.
  void clear();

 private:
  struct block {
    std::vector<std::uint8_t> data;
    /// Bytes [0, off) are already written to the socket.
    std::size_t off{0};
  };

  void recycle(std::vector<std::uint8_t> data);

  std::deque<block> blocks_;
  std::vector<std::vector<std::uint8_t>> spare_;
};

}  // namespace fastreg::net
