#include "store/server.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fastreg::store {

namespace {

/// Client data messages held per object while a lazy seed fetch is in
/// flight; overflow is nacked (the client parks and is resumed by the
/// object's migration).
constexpr std::size_t k_max_fetch_waiting = 64;
/// Gossip held per object during a fetch; overflow is dropped (gossip
/// is max-merging and self-heals once the instance is seeded).
constexpr std::size_t k_max_fetch_gossip = 16;

}  // namespace

server::server(std::shared_ptr<const shard_map> shards, std::uint32_t index)
    : map_(std::move(shards)), index_(index) {
  shard_ops_.assign(map_->num_shards(), 0);
  bind_metrics();
  sm_.epoch->set(static_cast<std::int64_t>(map_->epoch()));
  if (map_->config().persist.enabled()) {
    durable_ = std::make_unique<persist::server_durability>(
        map_->config().persist, index_);
    recover_from_disk();
  }
}

void server::recover_from_disk() {
  const auto& rec = durable_->recovered();
  if (!rec.found) return;  // fresh server: bootstrap normally
  if (rec.epoch != map_->epoch()) {
    // Epoch fence: the fleet installed a newer map while this server was
    // down (or this process was handed a directory from another life).
    // Which objects moved between the recovered epoch and now is
    // unknowable without the intermediate maps, so the only safe rejoin
    // is to discard and re-bootstrap: a server without state is exactly
    // the crashed replica the protocols' t budget already covers, and
    // the lazy seed-fetch path repopulates moved objects on demand.
    durable_->discard_recovered();
    return;
  }
  for (const auto& [obj, snap] : rec.objects) {
    auto& inner = inner_for(obj);
    if (snap.ts != k_initial_ts) {
      auto* s = as_seedable(&inner);
      FASTREG_CHECK(s != nullptr);
      s->seed_state(snap);
    }
    persisted_wts_[obj] = wts_t{snap.ts, snap.wid};
    ++recovered_objects_;
  }
}

void server::maybe_persist(object_id obj) {
  if (!durable_) return;
  const auto it = objects_.find(obj);
  if (it == objects_.end()) return;
  auto* s = as_seedable(it->second.get());
  if (s == nullptr) return;
  auto snap = s->peek_state();
  const wts_t w{snap.ts, snap.wid};
  wts_t& last = persisted_wts_[obj];  // default {k_initial_ts, 0}
  if (!(last < w)) return;  // nothing new became durable at this replica
  durable_->append_op(map_->epoch(), obj, snap);
  last = w;
  maybe_snapshot();
}

void server::maybe_snapshot() {
  if (!durable_ || !durable_->snapshot_due()) return;
  std::vector<std::pair<object_id, register_snapshot>> objs;
  objs.reserve(objects_.size());
  for (const auto& [obj, a] : objects_) {
    if (auto* s = as_seedable(a.get())) {
      objs.emplace_back(obj, s->peek_state());
    }
  }
  durable_->write_snapshot(map_->epoch(), std::move(objs));
}

void server::bind_metrics() {
  // Re-binding happens during install_map, which a reshard posts to the
  // reactor thread: a control-plane creation, explicitly exempted from
  // the registry's hot-loop check (new shard labels may not exist yet).
  obs::allow_hot_registration exempt;
  auto& reg = obs::registry::instance();
  const std::string lbl = "node=\"" + to_string(server_id(index_)) + "\"";
  sm_.ops = &reg.get_counter("fastreg_store_ops_total", lbl);
  sm_.nacks = &reg.get_counter("fastreg_store_epoch_nacks_total", lbl);
  sm_.fetch_reqs = &reg.get_counter("fastreg_store_fetches_started_total", lbl);
  sm_.fetch_overflow =
      &reg.get_counter("fastreg_store_fetch_overflow_nacks_total", lbl);
  sm_.epoch = &reg.get_gauge("fastreg_store_epoch", lbl);
  sm_.serve_ns = &reg.get_histogram("fastreg_store_serve_ns", lbl);
  rec_ = &obs::recorder_for(server_id(index_));
  shard_counters_.clear();
  shard_counters_.reserve(map_->num_shards());
  for (std::uint32_t s = 0; s < map_->num_shards(); ++s) {
    shard_counters_.push_back(&reg.get_counter(
        "fastreg_store_shard_ops_total",
        lbl + ",shard=\"" + std::to_string(s) + "\""));
  }
}

server::server(const server& o)
    : map_(o.map_),
      prev_map_(o.prev_map_),
      index_(o.index_),
      seed_snaps_(o.seed_snaps_),
      fetches_(o.fetches_),
      fetch_subs_(o.fetch_subs_),
      force_moved_(o.force_moved_),
      shard_ops_(o.shard_ops_),
      fetch_overflow_nacks_(o.fetch_overflow_nacks_),
      sm_(o.sm_),
      shard_counters_(o.shard_counters_),
      rec_(o.rec_) {
  FASTREG_EXPECTS(o.outbox_.empty());
  for (const auto& [obj, a] : o.objects_) {
    objects_.emplace(obj, a->clone());
  }
  for (const auto& [obj, a] : o.prev_objects_) {
    prev_objects_.emplace(obj, a->clone());
  }
}

automaton& server::inner_for(object_id obj) {
  auto it = objects_.find(obj);
  if (it == objects_.end()) {
    const auto& proto = map_->protocol_for_object(obj);
    it = objects_
             .emplace(obj,
                      proto.make_server(map_->config().base, index_, obj))
             .first;
  }
  return *it->second;
}

bool server::moved(object_id obj) const {
  return prev_map_ != nullptr && (object_moves(*prev_map_, *map_, obj) ||
                                  force_moved_.contains(obj));
}

std::vector<object_id> server::list_objects() const {
  std::vector<object_id> out;
  out.reserve(objects_.size() + prev_objects_.size());
  for (const auto& [obj, a] : objects_) out.push_back(obj);
  for (const auto& [obj, a] : prev_objects_) {
    if (!objects_.contains(obj)) out.push_back(obj);
  }
  return out;
}

std::vector<object_id> server::unseeded_moved_objects() const {
  // Objects whose superseded state is still set aside un-seeded (a moved
  // object never hosted here has no state to regress to: a fresh bottom
  // instance in a later generation is indistinguishable from a server
  // the register was simply never written to), plus objects with a lazy
  // fetch still buffered -- the next install nacks their buffered
  // traffic, so the next migration must re-fence and resume them.
  std::vector<object_id> out;
  for (const auto& [obj, a] : prev_objects_) {
    if (!seed_snaps_.contains(obj)) out.push_back(obj);
  }
  for (const auto& [obj, st] : fetches_) out.push_back(obj);
  return out;
}

void server::reset_shard_ops() { shard_ops_.assign(map_->num_shards(), 0); }

void server::install_map(std::shared_ptr<const shard_map> next,
                         const std::unordered_set<object_id>& force_move) {
  FASTREG_EXPECTS(next != nullptr);
  FASTREG_EXPECTS(next->epoch() == map_->epoch() + 1);
  prev_objects_.clear();  // superseded generation retired
  seed_snaps_.clear();
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (object_moves(*map_, *next, it->first) ||
        force_move.contains(it->first)) {
      prev_objects_.emplace(it->first, std::move(it->second));
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  force_moved_ = force_move;
  prev_map_ = std::move(map_);
  map_ = std::move(next);
  if (durable_) {
    // The mark advances the recovered epoch on replay and voids the
    // fenced objects' recovered state: their new-generation seeds land
    // as post-mark seed records. Unmoved objects' records stay valid
    // across the boundary.
    std::vector<object_id> fenced;
    fenced.reserve(prev_objects_.size());
    for (const auto& [obj, a] : prev_objects_) {
      fenced.push_back(obj);
      persisted_wts_.erase(obj);
    }
    durable_->append_epoch_mark(map_->epoch(), fenced);
  }
  shard_ops_.assign(map_->num_shards(), 0);
  bind_metrics();  // shard count may have changed
  sm_.epoch->set(static_cast<std::int64_t>(map_->epoch()));
  // Fetches of the retired generation cannot resolve anymore; nack what
  // they buffered (gossip is simply dropped: it means nothing across
  // generations). The nacks carry the NEW epoch, so the clients refetch
  // the map and re-issue or park; every fetch object was reported
  // through unseeded_moved_objects(), so the new migration force-moves
  // it, hands it off and resumes whoever parked.
  for (auto& [obj, st] : fetches_) {
    for (const auto& [from, m] : st.waiting) send_nack(from, m);
  }
  fetches_.clear();
  fetch_subs_.clear();
}

void server::send_nack(const process_id& to, const message& m) {
  sm_.nacks->inc();
  if (obs::recording_active()) {
    rec_->record(obs::rec_event::nack, m.trace, m.span,
                 static_cast<std::uint8_t>(m.type), to, m.obj,
                 map_->epoch(), m.ts);
  }
  message nack;
  nack.type = msg_type::epoch_nack;
  nack.obj = m.obj;
  nack.epoch = map_->epoch();
  nack.attempt = m.attempt;
  nack.trace = m.trace;
  nack.span = m.span;
  outbox_.add(to, std::move(nack));
}

void server::handle_state_req(const process_id& from, const message& m) {
  register_snapshot snap;
  const auto prev = prev_objects_.find(m.obj);
  if (prev != prev_objects_.end()) {
    auto* s = as_seedable(prev->second.get());
    FASTREG_CHECK(s != nullptr);
    snap = s->peek_state();
  } else if (!moved(m.obj)) {
    // Defensive: a state read of an unmoved object answers the live
    // instance (the coordinator normally only reads moved keys).
    const auto cur = objects_.find(m.obj);
    if (cur != objects_.end()) {
      auto* s = as_seedable(cur->second.get());
      FASTREG_CHECK(s != nullptr);
      snap = s->peek_state();
    }
  }
  // Moved but never hosted: this server holds no old-generation state, so
  // the default snapshot (the initial timestamp) is the honest answer.
  message ack;
  ack.type = msg_type::state_ack;
  ack.obj = m.obj;
  ack.epoch = map_->epoch();
  ack.mig = true;
  ack.trace = m.trace;
  ack.span = m.span;
  ack.rcounter = m.rcounter;
  ack.ts = snap.ts;
  ack.wid = snap.wid;
  ack.val = snap.val;
  ack.prev = snap.prev;
  ack.sig = snap.sig;
  outbox_.add(from, std::move(ack));
}

void server::adopt_seed(object_id obj, const register_snapshot& snap) {
  if (seed_snaps_.contains(obj)) return;
  // Replace whatever stray instance exists (none should: data traffic
  // for a draining object is held back until a seed lands).
  objects_.erase(obj);
  auto& inner = inner_for(obj);
  if (snap.ts != k_initial_ts) {
    auto* s = as_seedable(&inner);
    FASTREG_CHECK(s != nullptr);
    s->seed_state(snap);
  }
  seed_snaps_.emplace(obj, snap);
  if (durable_) {
    durable_->append_seed(map_->epoch(), obj, snap);
    persisted_wts_[obj] = wts_t{snap.ts, snap.wid};
    maybe_snapshot();
  }
  // Push the seed to every peer whose fetch_req this server answered
  // empty-handed; their buffered traffic is waiting on it.
  const auto subs = fetch_subs_.find(obj);
  if (subs != fetch_subs_.end()) {
    message note;
    note.type = msg_type::fetch_ack;
    note.obj = obj;
    note.epoch = map_->epoch();
    note.mig = true;
    note.rcounter = k_fetch_seeded;
    note.ts = snap.ts;
    note.wid = snap.wid;
    note.val = snap.val;
    note.prev = snap.prev;
    note.sig = snap.sig;
    for (const auto peer : subs->second) {
      outbox_.add(server_id(peer), note);
    }
    fetch_subs_.erase(subs);
  }
}

void server::finish_fetch(object_id obj) {
  const auto it = fetches_.find(obj);
  if (it == fetches_.end()) return;
  auto st = std::move(it->second);
  fetches_.erase(it);
  for (auto& [from, m] : st.gossip_waiting) handle_one(from, m);
  for (auto& [from, m] : st.waiting) handle_one(from, m);
}

void server::handle_seed_req(const process_id& from, const message& m) {
  // Only seeds of the CURRENT generation install. With quorum
  // completion, a seed_req may outlive the migration it belongs to;
  // letting a delayed previous-generation seed land after the next
  // install would record stale state as this generation's seed (and
  // ack it into the new seed quorum). Drop it -- nobody waits for its
  // ack anymore.
  if (m.epoch != map_->epoch()) return;
  // The seed install is the causal pivot of a park -> resume sequence;
  // record it as a serve so the merged timeline shows the order.
  if (obs::recording_active()) {
    rec_->record(obs::rec_event::serve, m.trace, m.span,
                 static_cast<std::uint8_t>(m.type), from, m.obj,
                 map_->epoch(), m.ts);
  }
  adopt_seed(m.obj, {m.ts, m.wid, m.val, m.prev, m.sig});
  // A lazy fetch racing the coordinator's own seed resolves here.
  finish_fetch(m.obj);
  message ack;
  ack.type = msg_type::seed_ack;
  ack.obj = m.obj;
  ack.epoch = map_->epoch();
  ack.mig = true;
  ack.trace = m.trace;
  ack.span = m.span;
  ack.rcounter = m.rcounter;
  outbox_.add(from, std::move(ack));
}

void server::enqueue_fetch(const process_id& from, const message& m) {
  // The message is about to wait behind the epoch fence: the forensic
  // marker for "this op stalled here until the seed landed".
  if (obs::recording_active()) {
    rec_->record(obs::rec_event::fence, m.trace, m.span,
                 static_cast<std::uint8_t>(m.type), from, m.obj,
                 map_->epoch(), m.ts);
  }
  auto [it, inserted] = fetches_.try_emplace(m.obj);
  if (from.is_server()) {
    // Gossip rides its own (smaller) buffer so a chatty protocol cannot
    // starve client data of buffer space; overflow drops it.
    if (it->second.gossip_waiting.size() < k_max_fetch_gossip) {
      it->second.gossip_waiting.emplace_back(from, m);
    }
  } else if (it->second.waiting.size() >= k_max_fetch_waiting) {
    // Overflow guard; in practice unreachable for client data (clients
    // keep at most one op in flight per object). The nacked client
    // parks, and nothing resumes it until the object's NEXT migration --
    // so count and alarm: a nonzero counter means a deployment actually
    // reached this state and someone may be parked for a long time.
    ++fetch_overflow_nacks_;
    sm_.fetch_overflow->inc();
    LOG_WARN("server %u: fetch buffer overflow for object %llu, nacking "
             "%s (parked until the next reconfiguration); %llu overflow "
             "nacks total",
             index_, static_cast<unsigned long long>(m.obj),
             to_string(from).c_str(),
             static_cast<unsigned long long>(fetch_overflow_nacks_));
    send_nack(from, m);
    return;
  } else {
    it->second.waiting.emplace_back(from, m);
  }
  if (!inserted) return;  // fetch already in flight; just wait with it
  sm_.fetch_reqs->inc();
  message req;
  req.type = msg_type::fetch_req;
  req.obj = m.obj;
  req.epoch = map_->epoch();
  req.mig = true;
  for (std::uint32_t j = 0; j < map_->config().base.S(); ++j) {
    if (j == index_) continue;
    outbox_.add(server_id(j), req);
  }
}

void server::handle_fetch_req(const process_id& from, const message& m) {
  if (!from.is_server()) return;
  message ack;
  ack.type = msg_type::fetch_ack;
  ack.obj = m.obj;
  ack.epoch = map_->epoch();
  ack.mig = true;
  ack.trace = m.trace;
  ack.span = m.span;
  if (m.epoch == map_->epoch()) {
    if (const auto snap_it = seed_snaps_.find(m.obj);
        snap_it != seed_snaps_.end()) {
      ack.rcounter |= k_fetch_seeded;
      const auto& snap = snap_it->second;
      ack.ts = snap.ts;
      ack.wid = snap.wid;
      ack.val = snap.val;
      ack.prev = snap.prev;
      ack.sig = snap.sig;
    } else {
      // Empty-handed: remember the requester and push the seed to it the
      // moment one is adopted here (adopt_seed), so a fetch that raced
      // the coordinator's seed wave still resolves.
      fetch_subs_[m.obj].insert(from.index);
      if (prev_objects_.contains(m.obj)) {
        ack.rcounter |= k_fetch_prev_hosted;
      }
    }
  }
  // Epoch mismatch: answer with our epoch and no flags; the requester
  // drops acks of another generation (and a behind requester will learn
  // the new epoch via its own install).
  outbox_.add(from, std::move(ack));
}

void server::handle_fetch_ack(const process_id& from, const message& m) {
  if (!from.is_server() || m.epoch != map_->epoch()) return;
  const auto it = fetches_.find(m.obj);
  if (it == fetches_.end()) return;  // already resolved
  if ((m.rcounter & k_fetch_seeded) != 0) {
    adopt_seed(m.obj, {m.ts, m.wid, m.val, m.prev, m.sig});
    finish_fetch(m.obj);
    return;
  }
  auto& st = it->second;
  if (st.dormant) return;
  if (!st.answered.insert(from.index).second) return;
  st.any_prev = st.any_prev || (m.rcounter & k_fetch_prev_hosted) != 0;
  // Decide once a safe majority of peers answered: of the S-1 peers, up
  // to t may be crashed, so S-1-t answers is the most we may wait for.
  const auto& base = map_->config().base;
  if (st.answered.size() < base.S() - 1 - base.t()) return;
  if (st.any_prev || prev_objects_.contains(m.obj)) {
    // Old-generation state survives somewhere reachable, so the
    // coordinator's handoff for this object is still in flight (it
    // discovers the object from the same indexes). Hold the buffered
    // traffic; we are subscribed at every answerer, and the seed wave
    // reaches a quorum of them, so a seeded notification is coming.
    // Which answers arrived when does not matter -- prev_hosted is a
    // per-generation constant, unlike seeded-ness.
    st.dormant = true;
    return;
  }
  // No seed and no old-generation state on any reachable server: any
  // value a completed old-epoch op established would live on a quorum,
  // which intersects self plus the answered set in at least one server.
  // The object was simply never written -- seed bottom and serve.
  adopt_seed(m.obj, {});
  finish_fetch(m.obj);
}

void server::handle_one(const process_id& from, const message& m) {
  if (m.type == msg_type::stats_req) {
    // Answered before any epoch fencing: scraping must keep working
    // mid-migration (the dump is how a stuck migration is diagnosed).
    message ack;
    ack.type = msg_type::stats_ack;
    ack.epoch = map_->epoch();
    ack.trace = m.trace;
    ack.span = m.span;
    ack.rcounter = m.rcounter;
    // Stamp this server's identity on every row that lacks one: a
    // scrape of a merged in-process registry is otherwise ambiguous
    // about which node answered. Same context the LOG_* prefix uses.
    ack.val = obs::render_text_annotated(
        log_node().empty() ? to_string(server_id(index_)) : log_node());
    outbox_.add(from, std::move(ack));
    return;
  }
  if (m.type == msg_type::state_req) {
    handle_state_req(from, m);
    return;
  }
  if (m.type == msg_type::seed_req) {
    handle_seed_req(from, m);
    return;
  }
  if (m.type == msg_type::fetch_req) {
    handle_fetch_req(from, m);
    return;
  }
  if (m.type == msg_type::fetch_ack) {
    handle_fetch_ack(from, m);
    return;
  }
  if (m.type == msg_type::epoch_nack || m.type == msg_type::state_ack ||
      m.type == msg_type::seed_ack) {
    return;  // not server-bound; a confused or malicious peer sent this
  }
  if (from.is_server()) {
    // Server-to-server traffic (max-min gossip) is routed by generation:
    // old-generation gossip finishes against the set-aside instances.
    // The attempt tag rides along even on the gossip path: a client-bound
    // reply a gossip message triggers (maxmin's maybe_reply) must carry
    // the attempt of the read it serves, or the client would drop it.
    if (moved(m.obj)) {
      if (m.epoch < map_->epoch()) {
        const auto prev = prev_objects_.find(m.obj);
        if (prev == prev_objects_.end()) return;
        tagging_netout tagged(outbox_, m.obj, m.epoch, m.attempt, false,
                              m.trace, m.span);
        prev->second->on_message(tagged, from, m);
        return;
      }
      if (!seed_snaps_.contains(m.obj)) {
        // Current-generation gossip is fenced exactly like client data:
        // feeding it to a fresh un-seeded instance would accumulate
        // state (and possibly be counted in peers' quorums) that
        // adopt_seed later destroys. Buffer it with the fetch and merge
        // it into the seeded instance on replay.
        enqueue_fetch(from, m);
        return;
      }
    }
    tagging_netout tagged(outbox_, m.obj, map_->epoch(), m.attempt, false,
                          m.trace, m.span);
    inner_for(m.obj).on_message(tagged, from, m);
    maybe_persist(m.obj);
    return;
  }
  // Client data message: apply the epoch fence, then count it against
  // its shard (the load monitor's sampling source). Counting only what
  // is actually served keeps the signal honest: a buffered message is
  // counted once on replay, not once per fence crossing, and stale
  // nacked traffic is not load.
  if (moved(m.obj)) {
    // Requests routed under a superseded map are nacked (the client
    // refetches and retries). Current-epoch requests for an object whose
    // seed this server has not received are held back while a lazy fetch
    // pulls the seeded snapshot from a generation peer (or establishes
    // that the object was never written anywhere); see the class comment.
    if (m.epoch != map_->epoch()) {
      send_nack(from, m);
      return;
    }
    if (!seed_snaps_.contains(m.obj)) {
      enqueue_fetch(from, m);
      return;
    }
  }
  const std::size_t shard = map_->shard_of_object(m.obj);
  ++shard_ops_[shard];
  sm_.ops->inc();
  shard_counters_[shard]->inc();
  if (obs::recording_active()) {
    rec_->record(obs::rec_event::serve, m.trace, m.span,
                 static_cast<std::uint8_t>(m.type), from, m.obj,
                 map_->epoch(), m.ts);
  }
  tagging_netout tagged(outbox_, m.obj, map_->epoch(), m.attempt, false,
                        m.trace, m.span);
  inner_for(m.obj).on_message(tagged, from, m);
  maybe_persist(m.obj);
}

void server::on_message(netout& net, const process_id& from,
                        const message& m) {
  const std::uint64_t t0 = obs::trace_now();
  handle_one(from, m);
  sm_.serve_ns->observe(obs::trace_now() - t0);
  outbox_.flush(net);
}

void server::on_batch(netout& net, const process_id& from,
                      std::span<const message> msgs) {
  // One clock pair per delivered batch: the per-message cost of serving
  // under batching is the span divided by the batch size, and the hot
  // path stays at two clock reads per transport unit.
  const std::uint64_t t0 = obs::trace_now();
  for (const auto& m : msgs) handle_one(from, m);
  sm_.serve_ns->observe(obs::trace_now() - t0);
  outbox_.flush(net);
}

std::unique_ptr<automaton> server::clone() const {
  return std::unique_ptr<automaton>(new server(*this));
}

}  // namespace fastreg::store
