// Measured simulation workloads: drive a protocol on the timed simulator
// and report per-operation latency (in simulated time units), round-trips,
// and message complexity. One simulated time unit = one "tick" of the
// uniform link-delay model; with delay U[lo, hi], a request/reply
// round-trip costs roughly lo+lo .. hi+hi ticks, so shapes (1 RTT vs 2
// RTT) are directly visible.
#pragma once

#include <cstdint>
#include <string>

#include "benchutil/stats.h"
#include "checker/history.h"
#include "registers/automaton.h"

namespace fastreg::benchutil {

struct workload_options {
  std::uint32_t num_writes{20};
  std::uint32_t reads_per_reader{20};
  std::uint64_t seed{1};
  std::uint64_t delay_lo{50};
  std::uint64_t delay_hi{150};
  /// false: ops run one at a time (pure latency). true: every client is
  /// closed-loop (contention shapes).
  bool concurrent{false};
  /// Crash this many servers up front (must be <= cfg.t()).
  std::uint32_t crash_servers{0};
  /// Crash them mid-run (after half the writes) instead of up front.
  bool crash_midway{false};
};

struct latency_report {
  stats read_latency;
  stats write_latency;
  stats read_rounds;
  stats write_rounds;
  double msgs_per_op{0};
  bool all_complete{true};
  checker::history hist;
};

/// Runs the workload on the timed simulator and collects the report.
[[nodiscard]] latency_report run_measured(const protocol& proto,
                                          const system_config& cfg,
                                          const workload_options& opt);

}  // namespace fastreg::benchutil
