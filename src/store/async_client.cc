#include "store/async_client.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "net/cluster.h"
#include "net/node.h"
#include "store/sim_store.h"

namespace fastreg::store {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// --------------------------------------------------------------- op_log --

std::size_t op_log::open(const process_id& client_pid, const std::string& key,
                         bool is_put, const value_t& v, std::uint64_t t0) {
  std::lock_guard<std::mutex> lk(mu_);
  raw_op op;
  op.key = key;
  op.client = client_pid;
  op.is_put = is_put;
  op.t0 = t0;
  if (is_put) op.val = v;
  log_.push_back(std::move(op));
  const std::size_t idx = log_.size() - 1;
  open_[{client_pid, key}].push_back(idx);
  return idx;
}

std::vector<std::size_t> op_log::close(
    const process_id& client_pid, const std::vector<store_result>& results,
    std::uint64_t t1) {
  std::lock_guard<std::mutex> lk(mu_);
  // Match completions to the EARLIEST incomplete log entry for their
  // (client, key): a stale completion closes the abandoned older entry,
  // a fresh one closes its own call's.
  std::vector<std::size_t> closed;
  closed.reserve(results.size());
  for (const auto& r : results) {
    const auto open_it = open_.find({client_pid, r.key});
    if (open_it == open_.end() || open_it->second.empty()) {
      closed.push_back(npos);
      continue;
    }
    const std::size_t i = open_it->second.front();
    open_it->second.pop_front();
    if (open_it->second.empty()) open_.erase(open_it);
    auto& op = log_[i];
    op.t1 = t1;
    op.ts = r.ts;
    op.wid = r.wid;
    if (!r.is_put) op.val = r.val;
    op.rounds = r.rounds;
    closed.push_back(i);
  }
  return closed;
}

store_histories op_log::gather() const {
  std::vector<raw_op> log;
  {
    std::lock_guard<std::mutex> lk(mu_);
    log = log_;
  }
  std::sort(log.begin(), log.end(),
            [](const raw_op& a, const raw_op& b) { return a.t0 < b.t0; });
  store_histories out;
  for (const auto& op : log) {
    auto& h = out.for_key(op.key);
    const auto idx = h.begin_op(op.client, op.is_put, op.t0,
                                op.is_put ? op.val : value_t{});
    if (!op.t1) continue;
    if (op.is_put) {
      h.complete_write(idx, *op.t1, op.rounds);
    } else {
      h.complete_read(idx, *op.t1, op.ts, op.wid, op.val, op.rounds);
    }
  }
  return out;
}

// -------------------------------------------------------- async_session --

async_session::async_session(process_id client, std::uint32_t depth)
    : client_(std::move(client)), depth_(depth) {
  FASTREG_EXPECTS(depth >= 1);
  // Session construction happens on the driver thread, never inside a
  // reactor loop, so fetching (and on first use creating) the admission
  // series here is legal and the increments below stay lock-free.
  auto& reg = obs::registry::instance();
  adm_[0] = &reg.get_counter("fastreg_store_admission_total",
                             "result=\"submitted\"");
  adm_[1] = &reg.get_counter("fastreg_store_admission_total",
                             "result=\"window_full\"");
  adm_[2] = &reg.get_counter("fastreg_store_admission_total",
                             "result=\"key_busy\"");
  adm_[3] = &reg.get_counter("fastreg_store_admission_total",
                             "result=\"failed\"");
}

void async_session::count(submit_status st) {
  adm_[static_cast<std::size_t>(st)]->inc();
}

void async_session::stash(std::vector<store_result> done) {
  if (done.empty()) return;
  harvested_ += done.size();
  results_.insert(results_.end(), std::make_move_iterator(done.begin()),
                  std::make_move_iterator(done.end()));
}

bool async_session::get(const std::string& key,
                        std::chrono::milliseconds timeout) {
  if (!blocking_submit(key, /*is_put=*/false, value_t{}, timeout)) {
    count(submit_status::failed);
    return false;
  }
  ++submitted_;
  count(submit_status::submitted);
  return true;
}

bool async_session::put(const std::string& key, value_t v,
                        std::chrono::milliseconds timeout) {
  if (!blocking_submit(key, /*is_put=*/true, std::move(v), timeout)) {
    count(submit_status::failed);
    return false;
  }
  ++submitted_;
  count(submit_status::submitted);
  return true;
}

submit_status async_session::try_get(const std::string& key) {
  const submit_status st = try_submit(key, /*is_put=*/false, value_t{});
  if (st == submit_status::submitted) ++submitted_;
  count(st);
  return st;
}

submit_status async_session::try_put(const std::string& key, value_t v) {
  const submit_status st = try_submit(key, /*is_put=*/true, std::move(v));
  if (st == submit_status::submitted) ++submitted_;
  count(st);
  return st;
}

// ---------------------------------------------------------- TCP backend --

namespace {

/// One client's session on a net::node (per-node or hub topology): ops
/// go on the wire inside a reactor step on the client actor's home
/// reactor, completions are harvested there, and both sides log into
/// the deployment's shared op_log.
class tcp_session final : public async_session {
 public:
  tcp_session(net::node& n, std::size_t actor, op_log& log,
              process_id client, std::uint32_t depth)
      : async_session(std::move(client), depth),
        node_(n),
        actor_(actor),
        log_(log) {}

  void pump() override { harvest(); }

  bool drain(std::chrono::milliseconds timeout) override {
    const bool ok = node_.wait_ops_in_flight_below(actor_, 1, timeout);
    harvest();
    return ok;
  }

 private:
  submit_status try_submit(const std::string& key, bool is_put,
                           value_t v) override {
    if (!node_.wait_ops_in_flight_below(actor_, depth_,
                                        std::chrono::milliseconds(0))) {
      return submit_status::window_full;
    }
    bool begun = false;
    std::uint64_t steptime = 0;
    std::vector<store_result> done;
    node_.run_on_reactor_net(actor_, [&](automaton& a, netout& net) {
      steptime = now_ns();
      auto& c = dynamic_cast<client&>(a);
      done = c.take_completions();
      if (c.has_pending(key)) return;  // same-key op still in flight
      if (is_put) {
        c.begin_put(key, v);
      } else {
        c.begin_get(key);
      }
      c.flush(net);
      begun = true;
    });
    if (!done.empty()) {
      (void)log_.close(client_, done, steptime);
      stash(std::move(done));
    }
    if (!begun) return submit_status::key_busy;
    log_.open(client_, key, is_put, v, steptime + 1);
    return submit_status::submitted;
  }

  bool blocking_submit(const std::string& key, bool is_put, value_t v,
                       std::chrono::milliseconds timeout) override {
    for (;;) {
      // A free window slot first; completions only ever shrink the window
      // between this wait and the reactor step below (this thread is the
      // sole submitter on the client), so the slot cannot vanish.
      if (!node_.wait_ops_in_flight_below(actor_, depth_, timeout)) {
        return false;
      }
      bool begun = false;
      std::uint64_t completed_before = 0;
      // Completion (t1) and invocation (t0) times are both taken ON the
      // reactor, at the top of the step that harvests the completions and
      // begins the new op. Completions harvested here finished strictly
      // before this step ran, and the new op starts strictly after, so
      // recording t1 = steptime < t0 = steptime + 1 preserves the real
      // precedence -- timestamping outside the step would let a just-
      // finished same-key op appear concurrent with its successor, which
      // the checkers reject as a well-formedness violation.
      std::uint64_t steptime = 0;
      std::vector<store_result> done;
      node_.run_on_reactor_net(actor_, [&](automaton& a, netout& net) {
        steptime = now_ns();
        auto& c = dynamic_cast<client&>(a);
        done = c.take_completions();
        if (c.has_pending(key)) {
          // Baseline for the wait below, captured ON the reactor: reading
          // the mirror after this step returns would race a completion
          // landing in between and wait for one more than will ever come.
          completed_before = c.ops_completed();
          return;  // same-key op still in flight
        }
        if (is_put) {
          c.begin_put(key, v);
        } else {
          c.begin_get(key);
        }
        c.flush(net);
        begun = true;
      });
      if (!done.empty()) {
        (void)log_.close(client_, done, steptime);
        stash(std::move(done));
      }
      if (begun) {
        log_.open(client_, key, is_put, v, steptime + 1);
        return true;
      }
      // The key's previous op (possibly abandoned by a timed-out blocking
      // call) is still in flight: wait for any completion, then retry.
      if (!node_.wait_ops_completed(actor_, completed_before + 1, timeout)) {
        return false;
      }
    }
  }

  /// take_completions on the reactor (so late server acks cannot race
  /// the drain); closes log entries and stashes the results.
  void harvest() {
    std::vector<store_result> done;
    node_.run_on_reactor(actor_, [&done](automaton& a) {
      done = dynamic_cast<client&>(a).take_completions();
    });
    if (done.empty()) return;
    (void)log_.close(client_, done, now_ns());
    stash(std::move(done));
  }

  net::node& node_;
  std::size_t actor_;
  op_log& log_;
};

}  // namespace

std::unique_ptr<async_session> tcp_frontend::open_session(
    const process_id& client_pid, std::uint32_t depth) {
  return std::make_unique<tcp_session>(cluster_.client_node(client_pid),
                                       cluster_.client_actor(client_pid),
                                       log_, client_pid, depth);
}

store_histories tcp_frontend::gather() const { return log_.gather(); }

// ---------------------------------------------------------- sim backend --

namespace {

/// One client's session on the deterministic simulator. try_* buffers
/// admitted ops; pump() issues the whole buffer in ONE invoke_step
/// (batched envelopes) and collects the completions the sim_store
/// tapped for this client. Blocking calls run the world (run_random on
/// the frontend's rng) until admission/completion, guarded by a step
/// budget so a wedged schedule fails instead of spinning forever.
class sim_session final : public async_session {
 public:
  sim_session(sim_store& s, rng& r, process_id client, std::uint32_t depth)
      : async_session(std::move(client), depth), s_(s), r_(r) {
    s_.tap_client(client_);
  }
  ~sim_session() override { s_.untap_client(client_); }

  void pump() override {
    if (!buf_.empty()) {
      s_.invoke_ops(client_, buf_);
      buf_.clear();
    }
    stash(s_.take_tapped(client_));
  }

  bool drain(std::chrono::milliseconds) override {
    pump();
    std::uint64_t guard = 0;
    while (in_flight() > 0) {
      if (++guard > k_step_budget) return false;
      if (s_.run_random(r_, 1) == 0) return false;  // wedged
      pump();
    }
    return true;
  }

 private:
  static constexpr std::uint64_t k_step_budget = 200'000'000;

  [[nodiscard]] client& automaton_ref() {
    return client_.is_writer() ? s_.writer_client(client_.index)
                               : s_.reader_client(client_.index);
  }

  [[nodiscard]] bool key_buffered(const std::string& key) const {
    return std::any_of(buf_.begin(), buf_.end(),
                       [&](const store_op& op) { return op.key == key; });
  }

  submit_status try_submit(const std::string& key, bool is_put,
                           value_t v) override {
    if (in_flight() >= depth_) return submit_status::window_full;
    if (key_buffered(key) || automaton_ref().has_pending(key)) {
      return submit_status::key_busy;
    }
    buf_.push_back(store_op{key, is_put, std::move(v)});
    return submit_status::submitted;
  }

  bool blocking_submit(const std::string& key, bool is_put, value_t v,
                       std::chrono::milliseconds) override {
    std::uint64_t guard = 0;
    for (;;) {
      const submit_status st = try_submit(key, is_put, v);
      if (st == submit_status::submitted) {
        // Blocking semantics promise the op is ON the wire on return, so
        // the buffered batch (this op included) is issued now.
        pump();
        return true;
      }
      pump();
      if (++guard > k_step_budget) return false;
      if (s_.run_random(r_, 1) == 0) return false;  // wedged
    }
  }

  sim_store& s_;
  rng& r_;
  std::vector<store_op> buf_;
};

}  // namespace

std::unique_ptr<async_session> sim_frontend::open_session(
    const process_id& client_pid, std::uint32_t depth) {
  return std::make_unique<sim_session>(s_, r_, client_pid, depth);
}

store_histories sim_frontend::gather() const { return s_.histories(); }

}  // namespace fastreg::store
