#include "store/tcp_store.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace fastreg::store {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

tcp_store::tcp_store(store_config cfg)
    : proto_(std::move(cfg)), cluster_(proto_.config().base, proto_) {}

std::optional<std::vector<store_result>> tcp_store::run_ops(
    net::node& n, const process_id& client_pid,
    const std::vector<std::pair<std::string, value_t>>& kvs, bool is_put,
    std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(!kvs.empty());
  const std::uint64_t t0 = now_ns();
  // Keys whose previous op timed out and is still in flight cannot be
  // re-begun (precondition); skip them -- the call reports failure but
  // the process must not abort on the reactor thread.
  auto skipped = std::make_shared<std::vector<std::string>>();
  const bool wait_ok = n.blocking_op(
      [&kvs, is_put, skipped](automaton& a, netout& net) {
        auto& c = dynamic_cast<client&>(a);
        for (const auto& [key, v] : kvs) {
          if (c.has_pending(key)) {
            skipped->push_back(key);
            continue;
          }
          if (is_put) {
            c.begin_put(key, v);
          } else {
            c.begin_get(key);
          }
        }
        c.flush(net);
      },
      timeout);
  // Harvest whatever completed, on the reactor thread so late server acks
  // cannot race the drain. The haul may include stale completions of ops
  // a previous timed-out call abandoned.
  std::vector<store_result> results;
  n.run_on_reactor([&results](automaton& a) {
    results = dynamic_cast<client&>(a).take_completions();
  });
  const std::uint64_t t1 = now_ns();

  std::lock_guard<std::mutex> lk(mu_);
  // Log this call's started ops first (incomplete), remembering their
  // indices so stale completions can be told apart from fresh ones.
  // Skipped keys are NOT logged: no protocol op ran, and their abandoned
  // older entry is still the open op for that (client, key).
  std::vector<std::size_t> started;
  started.reserve(kvs.size());
  for (const auto& [key, v] : kvs) {
    if (std::find(skipped->begin(), skipped->end(), key) !=
        skipped->end()) {
      continue;
    }
    raw_op op;
    op.key = key;
    op.client = client_pid;
    op.is_put = is_put;
    op.t0 = t0;
    if (is_put) op.val = v;
    log_.push_back(std::move(op));
    started.push_back(log_.size() - 1);
    open_[{client_pid, key}].push_back(log_.size() - 1);
  }
  // Match completions to the EARLIEST incomplete log entry for their
  // (client, key): a stale completion closes the abandoned older entry,
  // a fresh one closes this call's.
  std::vector<store_result> fresh;
  for (auto& r : results) {
    const auto open_it = open_.find({client_pid, r.key});
    if (open_it == open_.end() || open_it->second.empty()) continue;
    const std::size_t i = open_it->second.front();
    open_it->second.pop_front();
    if (open_it->second.empty()) open_.erase(open_it);
    auto& op = log_[i];
    op.t1 = t1;
    op.ts = r.ts;
    op.wid = r.wid;
    if (!r.is_put) op.val = r.val;
    op.rounds = r.rounds;
    if (std::find(started.begin(), started.end(), i) != started.end()) {
      fresh.push_back(std::move(r));
    }
  }
  if (!wait_ok || !skipped->empty() || fresh.size() < started.size()) {
    return std::nullopt;
  }
  return fresh;
}

std::optional<store_result> tcp_store::get(std::uint32_t reader_index,
                                           const std::string& key,
                                           std::chrono::milliseconds timeout) {
  auto res = multi_get(reader_index, {key}, timeout);
  if (!res || res->empty()) return std::nullopt;
  return std::move(res->front());
}

bool tcp_store::put(std::uint32_t writer_index, const std::string& key,
                    value_t v, std::chrono::milliseconds timeout) {
  return multi_put(writer_index, {{key, std::move(v)}}, timeout);
}

std::optional<std::vector<store_result>> tcp_store::multi_get(
    std::uint32_t reader_index, const std::vector<std::string>& keys,
    std::chrono::milliseconds timeout) {
  std::vector<std::pair<std::string, value_t>> kvs;
  kvs.reserve(keys.size());
  for (const auto& k : keys) kvs.emplace_back(k, value_t{});
  return run_ops(cluster_.reader(reader_index), reader_id(reader_index), kvs,
                 /*is_put=*/false, timeout);
}

bool tcp_store::multi_put(
    std::uint32_t writer_index,
    const std::vector<std::pair<std::string, value_t>>& kvs,
    std::chrono::milliseconds timeout) {
  return run_ops(cluster_.writer(writer_index), writer_id(writer_index), kvs,
                 /*is_put=*/true, timeout)
      .has_value();
}

store_histories tcp_store::gather() const {
  std::vector<raw_op> log;
  {
    std::lock_guard<std::mutex> lk(mu_);
    log = log_;
  }
  std::sort(log.begin(), log.end(),
            [](const raw_op& a, const raw_op& b) { return a.t0 < b.t0; });
  store_histories out;
  for (const auto& op : log) {
    auto& h = out.for_key(op.key);
    const auto idx = h.begin_op(op.client, op.is_put, op.t0,
                                op.is_put ? op.val : value_t{});
    if (!op.t1) continue;
    if (op.is_put) {
      h.complete_write(idx, *op.t1, op.rounds);
    } else {
      h.complete_read(idx, *op.t1, op.ts, op.wid, op.val, op.rounds);
    }
  }
  return out;
}

}  // namespace fastreg::store
