// The paper's primary contribution: the fast SWMR atomic register of
// Figure 2 (crash model). Every read and every write completes in exactly
// one communication round-trip, provided R < S/t - 2.
//
// Roles:
//  * writer  -- increments its local timestamp and writes to all servers;
//    returns after S - t WRITEACKs (lines 4-8).
//  * server  -- stores the highest (ts, val, prev) it has seen, the set
//    `seen` of clients it has answered since adopting that timestamp, and a
//    per-client operation counter used to discard stale messages
//    (lines 23-35).
//  * reader  -- collects S - t READACKs, takes the maximum timestamp, and
//    returns its value iff the fast-read predicate holds, else the previous
//    value (lines 12-22). The read request writes back the reader's
//    previous maximum, which is what makes later reads see it.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "registers/automaton.h"
#include "registers/predicate.h"

namespace fastreg {

class fast_swmr_writer final : public automaton, public writer_iface {
 public:
  explicit fast_swmr_writer(system_config cfg);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return writer_id(0); }

  void invoke_write(netout& net, value_t v) override;
  [[nodiscard]] bool write_in_progress() const override { return pending_; }
  [[nodiscard]] std::uint64_t writes_completed() const override {
    return completed_;
  }
  [[nodiscard]] int last_write_rounds() const override { return 1; }
  void seed_writer(const register_snapshot& migrated) override;

  /// Timestamp the next write will carry (Figure 2 inits ts to 1).
  [[nodiscard]] ts_t next_ts() const { return ts_; }

 private:
  system_config cfg_;
  ts_t ts_{1};
  bool pending_{false};
  value_t cur_val_{};
  value_t last_val_{};  // value of the immediately preceding write
  std::unordered_set<std::uint32_t> acks_{};
  std::uint64_t completed_{0};
};

class fast_swmr_reader final : public automaton, public reader_iface {
 public:
  fast_swmr_reader(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return reader_id(index_);
  }

  void invoke_read(netout& net) override;
  [[nodiscard]] bool read_in_progress() const override { return pending_; }
  [[nodiscard]] const std::optional<read_result>& last_read() const override {
    return last_result_;
  }
  [[nodiscard]] std::uint64_t reads_completed() const override {
    return completed_;
  }

  /// The predicate witness `a` of the last completed read (0 = predicate
  /// failed and the read returned maxTS - 1). For white-box tests.
  [[nodiscard]] std::uint32_t last_witness() const { return last_witness_; }

 private:
  void decide();

  system_config cfg_;
  std::uint32_t index_;
  tagged_value maxts_{};  // written back on the next read (line 13)
  std::uint64_t rcounter_{0};
  bool pending_{false};
  std::vector<message> acks_{};
  std::unordered_set<std::uint32_t> ack_from_{};
  std::optional<read_result> last_result_{};
  std::uint64_t completed_{0};
  std::uint32_t last_witness_{0};
};

class fast_swmr_server final : public automaton, public seedable {
 public:
  fast_swmr_server(system_config cfg, std::uint32_t index);

  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override {
    return server_id(index_);
  }

  [[nodiscard]] register_snapshot peek_state() const override;
  void seed_state(const register_snapshot& s) override;

  // State accessors for tests and the adversary harness.
  [[nodiscard]] const tagged_value& stored() const { return cur_; }
  [[nodiscard]] const seen_set& seen() const { return seen_; }

 private:
  system_config cfg_;
  std::uint32_t index_;
  tagged_value cur_{};
  seen_set seen_{};
  std::vector<std::uint64_t> counters_;  // per client_slot, Figure 2 line 25
};

class fast_swmr_protocol final : public protocol {
 public:
  [[nodiscard]] std::string name() const override { return "fast_swmr"; }
  [[nodiscard]] bool feasible(const system_config& cfg) const override {
    return fast_swmr_feasible(cfg.S(), cfg.t(), cfg.R());
  }
  [[nodiscard]] int read_rounds() const override { return 1; }
  [[nodiscard]] int write_rounds() const override { return 1; }
  [[nodiscard]] std::unique_ptr<automaton> make_writer(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_reader(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
  [[nodiscard]] std::unique_ptr<automaton> make_server(
      const system_config& cfg, std::uint32_t index,
      object_id obj = k_default_object) const override;
};

}  // namespace fastreg
