// sensor_feed: choosing a register protocol for a read-heavy telemetry
// fan-out, using the paper's results as the decision procedure.
//
// One sensor gateway (the writer) publishes readings; dashboards (readers)
// poll continuously. We compare, on identical simulated workloads:
//   * fast_swmr -- 1-RTT reads, but caps dashboards at R < S/t - 2;
//   * abd       -- 2-RTT reads, any number of dashboards, t < S/2;
//   * regular   -- 1-RTT reads, any number of dashboards, t < S/2, but
//                  only regular semantics (dashboards may disagree
//                  transiently during a write).
// This is exactly the trade-off of Section 8 of the paper.
//
// Build & run:  ./build/examples/sensor_feed
#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

int main() {
  std::printf("sensor_feed: one gateway, many dashboards, S=13 servers\n\n");
  table t({"protocol", "dashboards", "allowed?", "read_p50(ticks)",
           "crash_tolerance", "semantics"});
  const std::uint32_t S = 13;
  for (std::uint32_t dashboards : {2u, 4u, 8u}) {
    // fast_swmr must shrink t to keep R < S/t - 2; pick largest legal t.
    std::uint32_t t_fast = 0;
    for (std::uint32_t cand = S / 2; cand >= 1; --cand) {
      if (fast_swmr_feasible(S, cand, dashboards)) {
        t_fast = cand;
        break;
      }
    }
    for (const char* proto : {"fast_swmr", "abd", "regular"}) {
      const bool is_fast_atomic = std::string(proto) == "fast_swmr";
      const std::uint32_t tf = is_fast_atomic ? t_fast : S / 2 - 1 + (S % 2);
      if (is_fast_atomic && t_fast == 0) {
        t.add_row({proto, std::to_string(dashboards), "no (R >= S/t - 2)",
                   "-", "-", "atomic"});
        continue;
      }
      system_config cfg;
      cfg.servers = S;
      cfg.t_failures = tf;
      cfg.readers = dashboards;
      workload_options opt;
      opt.num_writes = 10;
      opt.reads_per_reader = 6;
      opt.concurrent = true;
      const auto rep = run_measured(*make_protocol(proto), cfg, opt);
      t.add_row({proto, std::to_string(dashboards), "yes",
                 fmt(rep.read_latency.p50()),
                 std::to_string(tf) + "/" + std::to_string(S),
                 std::string(proto) == "regular" ? "regular" : "atomic"});
    }
  }
  t.print();
  std::printf(
      "\nhow to read this (Section 8 of the paper): if you need few "
      "dashboards, the fast atomic register gives 1-RTT reads at reduced "
      "crash tolerance; if you need many, choose between paying a second "
      "round-trip (abd, atomic) or weakening consistency (regular, "
      "1 RTT at full tolerance).\n");
  return 0;
}
