#include "store/tcp_store.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace fastreg::store {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

tcp_store::tcp_store(store_config cfg, net::node_options nopt)
    : proto_(std::move(cfg)), cluster_(proto_.config().base, proto_, nopt) {}

std::size_t tcp_store::log_open(const process_id& client_pid,
                                const std::string& key, bool is_put,
                                const value_t& v, std::uint64_t t0) {
  std::lock_guard<std::mutex> lk(mu_);
  raw_op op;
  op.key = key;
  op.client = client_pid;
  op.is_put = is_put;
  op.t0 = t0;
  if (is_put) op.val = v;
  log_.push_back(std::move(op));
  const std::size_t idx = log_.size() - 1;
  open_[{client_pid, key}].push_back(idx);
  return idx;
}

std::vector<std::size_t> tcp_store::log_close(
    const process_id& client_pid, const std::vector<store_result>& results,
    std::uint64_t t1) {
  std::lock_guard<std::mutex> lk(mu_);
  // Match completions to the EARLIEST incomplete log entry for their
  // (client, key): a stale completion closes the abandoned older entry,
  // a fresh one closes its own call's.
  std::vector<std::size_t> closed;
  closed.reserve(results.size());
  for (const auto& r : results) {
    const auto open_it = open_.find({client_pid, r.key});
    if (open_it == open_.end() || open_it->second.empty()) {
      closed.push_back(static_cast<std::size_t>(-1));
      continue;
    }
    const std::size_t i = open_it->second.front();
    open_it->second.pop_front();
    if (open_it->second.empty()) open_.erase(open_it);
    auto& op = log_[i];
    op.t1 = t1;
    op.ts = r.ts;
    op.wid = r.wid;
    if (!r.is_put) op.val = r.val;
    op.rounds = r.rounds;
    closed.push_back(i);
  }
  return closed;
}

std::optional<std::vector<store_result>> tcp_store::run_ops(
    net::node& n, const process_id& client_pid,
    const std::vector<std::pair<std::string, value_t>>& kvs, bool is_put,
    std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(!kvs.empty());
  const std::uint64_t t0 = now_ns();
  // Keys whose previous op timed out and is still in flight cannot be
  // re-begun (precondition); skip them -- the call reports failure but
  // the process must not abort on the reactor thread.
  auto skipped = std::make_shared<std::vector<std::string>>();
  const bool wait_ok = n.blocking_op(
      [&kvs, is_put, skipped](automaton& a, netout& net) {
        auto& c = dynamic_cast<client&>(a);
        for (const auto& [key, v] : kvs) {
          if (c.has_pending(key)) {
            skipped->push_back(key);
            continue;
          }
          if (is_put) {
            c.begin_put(key, v);
          } else {
            c.begin_get(key);
          }
        }
        c.flush(net);
      },
      timeout);
  // Harvest whatever completed, on the reactor thread so late server acks
  // cannot race the drain. The haul may include stale completions of ops
  // a previous timed-out call abandoned.
  std::vector<store_result> results;
  n.run_on_reactor([&results](automaton& a) {
    results = dynamic_cast<client&>(a).take_completions();
  });
  const std::uint64_t t1 = now_ns();

  // Log this call's started ops first (incomplete), remembering their
  // indices so stale completions can be told apart from fresh ones.
  // Skipped keys are NOT logged: no protocol op ran, and their abandoned
  // older entry is still the open op for that (client, key).
  std::vector<std::size_t> started;
  started.reserve(kvs.size());
  for (const auto& [key, v] : kvs) {
    if (std::find(skipped->begin(), skipped->end(), key) !=
        skipped->end()) {
      continue;
    }
    started.push_back(log_open(client_pid, key, is_put, v, t0));
  }
  const auto closed = log_close(client_pid, results, t1);
  std::vector<store_result> fresh;
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (std::find(started.begin(), started.end(), closed[k]) !=
        started.end()) {
      fresh.push_back(std::move(results[k]));
    }
  }
  if (!wait_ok || !skipped->empty() || fresh.size() < started.size()) {
    return std::nullopt;
  }
  return fresh;
}

// ------------------------------------------------------------- pipeline --

tcp_store::pipeline::pipeline(tcp_store& ts, bool is_writer,
                              std::uint32_t index, std::uint32_t depth)
    : ts_(ts),
      node_(is_writer ? ts.cluster_.writer(index) : ts.cluster_.reader(index)),
      client_(is_writer ? writer_id(index) : reader_id(index)),
      depth_(depth) {
  FASTREG_EXPECTS(depth >= 1);
}

bool tcp_store::pipeline::get(const std::string& key,
                              std::chrono::milliseconds timeout) {
  return submit(key, /*is_put=*/false, value_t{}, timeout);
}

bool tcp_store::pipeline::put(const std::string& key, value_t v,
                              std::chrono::milliseconds timeout) {
  return submit(key, /*is_put=*/true, std::move(v), timeout);
}

bool tcp_store::pipeline::submit(const std::string& key, bool is_put,
                                 value_t v,
                                 std::chrono::milliseconds timeout) {
  for (;;) {
    // A free window slot first; completions only ever shrink the window
    // between this wait and the reactor step below (this thread is the
    // sole submitter on the client), so the slot cannot vanish.
    if (!node_.wait_ops_in_flight_below(depth_, timeout)) return false;
    bool begun = false;
    std::uint64_t completed_before = 0;
    // Completion (t1) and invocation (t0) times are both taken ON the
    // reactor, at the top of the step that harvests the completions and
    // begins the new op. Completions harvested here finished strictly
    // before this step ran, and the new op starts strictly after, so
    // recording t1 = steptime < t0 = steptime + 1 preserves the real
    // precedence -- timestamping outside the step would let a just-
    // finished same-key op appear concurrent with its successor, which
    // the checkers reject as a well-formedness violation.
    std::uint64_t steptime = 0;
    std::vector<store_result> done;
    node_.run_on_reactor_net([&](automaton& a, netout& net) {
      steptime = now_ns();
      auto& c = dynamic_cast<client&>(a);
      done = c.take_completions();
      if (c.has_pending(key)) {
        // Baseline for the wait below, captured ON the reactor: reading
        // the mirror after this step returns would race a completion
        // landing in between and wait for one more than will ever come.
        completed_before = c.ops_completed();
        return;  // same-key op still in flight
      }
      if (is_put) {
        c.begin_put(key, v);
      } else {
        c.begin_get(key);
      }
      c.flush(net);
      begun = true;
    });
    if (!done.empty()) {
      (void)ts_.log_close(client_, done, steptime);
      results_.insert(results_.end(),
                      std::make_move_iterator(done.begin()),
                      std::make_move_iterator(done.end()));
    }
    if (begun) {
      ts_.log_open(client_, key, is_put, v, steptime + 1);
      ++submitted_;
      return true;
    }
    // The key's previous op (possibly abandoned by a timed-out blocking
    // call) is still in flight: wait for any completion, then retry.
    if (!node_.wait_ops_completed(completed_before + 1, timeout)) {
      return false;
    }
  }
}

bool tcp_store::pipeline::drain(std::chrono::milliseconds timeout) {
  const bool ok = node_.wait_ops_in_flight_below(1, timeout);
  harvest();
  return ok;
}

void tcp_store::pipeline::harvest() {
  std::vector<store_result> done;
  node_.run_on_reactor([&done](automaton& a) {
    done = dynamic_cast<client&>(a).take_completions();
  });
  if (done.empty()) return;
  (void)ts_.log_close(client_, done, now_ns());
  results_.insert(results_.end(), std::make_move_iterator(done.begin()),
                  std::make_move_iterator(done.end()));
}

std::vector<store_result> tcp_store::pipeline::take_results() {
  return std::exchange(results_, {});
}

std::optional<store_result> tcp_store::get(std::uint32_t reader_index,
                                           const std::string& key,
                                           std::chrono::milliseconds timeout) {
  auto res = multi_get(reader_index, {key}, timeout);
  if (!res || res->empty()) return std::nullopt;
  return std::move(res->front());
}

bool tcp_store::put(std::uint32_t writer_index, const std::string& key,
                    value_t v, std::chrono::milliseconds timeout) {
  return multi_put(writer_index, {{key, std::move(v)}}, timeout);
}

std::optional<std::vector<store_result>> tcp_store::multi_get(
    std::uint32_t reader_index, const std::vector<std::string>& keys,
    std::chrono::milliseconds timeout) {
  std::vector<std::pair<std::string, value_t>> kvs;
  kvs.reserve(keys.size());
  for (const auto& k : keys) kvs.emplace_back(k, value_t{});
  return run_ops(cluster_.reader(reader_index), reader_id(reader_index), kvs,
                 /*is_put=*/false, timeout);
}

bool tcp_store::multi_put(
    std::uint32_t writer_index,
    const std::vector<std::pair<std::string, value_t>>& kvs,
    std::chrono::milliseconds timeout) {
  return run_ops(cluster_.writer(writer_index), writer_id(writer_index), kvs,
                 /*is_put=*/true, timeout)
      .has_value();
}

std::string tcp_store::scrape(std::uint32_t server_index,
                              std::chrono::milliseconds timeout) {
  FASTREG_EXPECTS(server_index < cluster_.book().server_ports.size());
  net::unique_fd fd =
      net::connect_to(cluster_.book().server_ports[server_index]);
  if (!fd.valid()) return {};
  // Introduce the scraper under a reader id far outside any real
  // configuration: the server routes the stats_ack back over the
  // connection this id said hello on, and no live reader's reply route
  // is disturbed.
  const process_id scraper = reader_id(1'000'000u + server_index);
  auto bytes = net::encode_hello(scraper);
  message req;
  req.type = msg_type::stats_req;
  req.rcounter = 1;
  const auto frame = net::encode_msg_frame(scraper, req);
  bytes.insert(bytes.end(), frame.begin(), frame.end());

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const auto remaining_ms = [&]() -> int {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    return static_cast<int>(std::max<std::int64_t>(0, left.count()));
  };

  // Non-blocking connect: wait for writability, then push the request.
  std::size_t off = 0;
  while (off < bytes.size()) {
    pollfd p{fd.get(), POLLOUT, 0};
    const int pr = ::poll(&p, 1, remaining_ms());
    if (pr <= 0) return {};
    const ssize_t n =
        ::write(fd.get(), bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    return {};
  }

  net::frame_buffer in;
  std::string dump;
  bool got = false;
  while (!got) {
    pollfd p{fd.get(), POLLIN, 0};
    const int pr = ::poll(&p, 1, remaining_ms());
    if (pr <= 0) return {};
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd.get(), buf, sizeof buf);
    if (n == 0) return {};  // server closed without answering
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return {};
    }
    in.drain(buf, static_cast<std::size_t>(n), [&](net::frame&& f) {
      if (f.kind == net::frame_kind::msg && f.msg.has_value() &&
          f.msg->type == msg_type::stats_ack) {
        dump = std::move(f.msg->val);
        got = true;
      }
    });
    if (in.corrupt()) return {};
  }
  return dump;
}

store_histories tcp_store::gather() const {
  std::vector<raw_op> log;
  {
    std::lock_guard<std::mutex> lk(mu_);
    log = log_;
  }
  std::sort(log.begin(), log.end(),
            [](const raw_op& a, const raw_op& b) { return a.t0 < b.t0; });
  store_histories out;
  for (const auto& op : log) {
    auto& h = out.for_key(op.key);
    const auto idx = h.begin_op(op.client, op.is_put, op.t0,
                                op.is_put ? op.val : value_t{});
    if (!op.t1) continue;
    if (op.is_put) {
      h.complete_write(idx, *op.t1, op.rounds);
    } else {
      h.complete_read(idx, *op.t1, op.ts, op.wid, op.val, op.rounds);
    }
  }
  return out;
}

}  // namespace fastreg::store
