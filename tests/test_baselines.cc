// Unit tests for the baseline protocols: quorum_server transitions, ABD
// phases, the regular/single-reader fast readers, the max-min gossip
// machinery, MWMR timestamps, and the protocol registry.
#include <gtest/gtest.h>

#include "checker/atomicity.h"
#include "registers/abd.h"
#include "registers/maxmin.h"
#include "registers/mwmr.h"
#include "registers/registry.h"
#include "registers/regular.h"
#include "sim/world.h"
#include "sim_test_util.h"

namespace fastreg {
namespace {

using test::make_cfg;

class capture final : public netout {
 public:
  void send(const process_id& to, message m) override {
    out.emplace_back(to, std::move(m));
  }
  std::vector<std::pair<process_id, message>> out;
};

// ----------------------------------------------------------- quorum_server

TEST(QuorumServer, AdoptsLexicographicallyLargerTimestamps) {
  quorum_server srv(make_cfg(3, 1, 1), 0);
  capture net;
  message w;
  w.type = msg_type::write_req;
  w.ts = 1;
  w.wid = 2;
  w.val = "a";
  srv.on_message(net, writer_id(1), w);
  EXPECT_EQ(srv.stored_ts(), (wts_t{1, 2}));

  // Same number, smaller wid: not adopted.
  message w2 = w;
  w2.wid = 1;
  w2.val = "b";
  srv.on_message(net, writer_id(0), w2);
  EXPECT_EQ(srv.stored_val(), "a");

  // Larger number: adopted.
  message w3 = w;
  w3.ts = 2;
  w3.wid = 1;
  w3.val = "c";
  srv.on_message(net, writer_id(0), w3);
  EXPECT_EQ(srv.stored_val(), "c");
}

TEST(QuorumServer, AcksEchoRequestTimestampNotStored) {
  quorum_server srv(make_cfg(3, 1, 1), 0);
  capture net;
  message hi;
  hi.type = msg_type::write_req;
  hi.ts = 9;
  hi.val = "high";
  srv.on_message(net, writer_id(0), hi);
  message low;
  low.type = msg_type::wb_req;
  low.ts = 3;
  low.rcounter = 4;
  srv.on_message(net, reader_id(0), low);
  ASSERT_EQ(net.out.size(), 2u);
  // The wb_ack echoes ts=3 so the client can match it, even though the
  // server kept ts=9.
  EXPECT_EQ(net.out[1].second.type, msg_type::wb_ack);
  EXPECT_EQ(net.out[1].second.ts, 3);
  EXPECT_EQ(srv.stored_ts().num, 9);
}

TEST(QuorumServer, QueryAckReportsStoredTimestamp) {
  quorum_server srv(make_cfg(3, 1, 1), 0);
  capture net;
  message q;
  q.type = msg_type::query_req;
  q.rcounter = 1;
  srv.on_message(net, writer_id(0), q);
  ASSERT_EQ(net.out.size(), 1u);
  EXPECT_EQ(net.out[0].second.type, msg_type::query_ack);
  EXPECT_EQ(net.out[0].second.ts, 0);
}

TEST(QuorumServer, IgnoresGossipAndServerPeers) {
  quorum_server srv(make_cfg(3, 1, 1), 0);
  capture net;
  message g;
  g.type = msg_type::gossip;
  srv.on_message(net, server_id(1), g);
  message rd;
  rd.type = msg_type::read_req;
  srv.on_message(net, server_id(2), rd);
  EXPECT_TRUE(net.out.empty());
}

// ------------------------------------------------------------------- ABD

TEST(AbdReader, TwoPhaseStateMachine) {
  const auto cfg = make_cfg(3, 1, 1);
  abd_reader rd(cfg, 0);
  capture net;
  rd.invoke_read(net);
  EXPECT_TRUE(rd.read_in_progress());
  ASSERT_EQ(net.out.size(), 3u);  // phase-1 requests
  EXPECT_EQ(net.out[0].second.type, msg_type::read_req);

  // Two read_acks (S - t = 2) trigger the write-back phase.
  net.out.clear();
  message ack;
  ack.type = msg_type::read_ack;
  ack.ts = 5;
  ack.val = "v5";
  ack.rcounter = 1;
  rd.on_message(net, server_id(0), ack);
  ack.ts = 4;
  ack.val = "v4";
  rd.on_message(net, server_id(1), ack);
  ASSERT_EQ(net.out.size(), 3u);  // wb requests
  EXPECT_EQ(net.out[0].second.type, msg_type::wb_req);
  EXPECT_EQ(net.out[0].second.ts, 5);  // the max was chosen
  EXPECT_EQ(net.out[0].second.val, "v5");
  EXPECT_TRUE(rd.read_in_progress());

  // Two wb_acks complete the read.
  message wba;
  wba.type = msg_type::wb_ack;
  wba.ts = 5;
  wba.rcounter = 2;
  rd.on_message(net, server_id(0), wba);
  rd.on_message(net, server_id(2), wba);
  EXPECT_FALSE(rd.read_in_progress());
  EXPECT_EQ(rd.last_read()->val, "v5");
  EXPECT_EQ(rd.last_read()->rounds, 2);
}

TEST(AbdReader, StaleAcksFromPreviousPhaseIgnored) {
  const auto cfg = make_cfg(3, 1, 1);
  abd_reader rd(cfg, 0);
  capture net;
  rd.invoke_read(net);
  message ack;
  ack.type = msg_type::read_ack;
  ack.ts = 5;
  ack.val = "v5";
  ack.rcounter = 1;
  rd.on_message(net, server_id(0), ack);
  rd.on_message(net, server_id(1), ack);
  // Now in write-back; a late phase-1 ack must not count as a wb_ack.
  message late = ack;
  rd.on_message(net, server_id(2), late);
  EXPECT_TRUE(rd.read_in_progress());
}

TEST(AbdWriter, LocalTimestampIncrementsPerWrite) {
  const auto cfg = make_cfg(3, 1, 1);
  abd_writer w(cfg);
  capture net;
  w.invoke_write(net, "a");
  EXPECT_EQ(net.out[0].second.ts, 1);
  message ack;
  ack.type = msg_type::write_ack;
  ack.ts = 1;
  ack.rcounter = 1;
  w.on_message(net, server_id(0), ack);
  w.on_message(net, server_id(1), ack);
  EXPECT_FALSE(w.write_in_progress());
  net.out.clear();
  w.invoke_write(net, "b");
  EXPECT_EQ(net.out[0].second.ts, 2);
}

// ---------------------------------------------------------------- regular

TEST(RegularReader, OneRoundMaxSelection) {
  const auto cfg = make_cfg(3, 1, 1);
  regular_reader rd(cfg, 0);
  capture net;
  rd.invoke_read(net);
  message ack;
  ack.type = msg_type::read_ack;
  ack.rcounter = 1;
  ack.ts = 2;
  ack.val = "new";
  rd.on_message(net, server_id(0), ack);
  ack.ts = 1;
  ack.val = "old";
  rd.on_message(net, server_id(1), ack);
  EXPECT_FALSE(rd.read_in_progress());
  EXPECT_EQ(rd.last_read()->val, "new");
  EXPECT_EQ(rd.last_read()->rounds, 1);
}

TEST(SingleReaderFast, NeverGoesBackwards) {
  const auto cfg = make_cfg(3, 1, 1);
  single_reader_fast_reader rd(cfg, 0);
  capture net;
  // First read sees ts=5.
  rd.invoke_read(net);
  message ack;
  ack.type = msg_type::read_ack;
  ack.rcounter = 1;
  ack.ts = 5;
  ack.val = "v5";
  rd.on_message(net, server_id(0), ack);
  rd.on_message(net, server_id(1), ack);
  EXPECT_EQ(rd.last_read()->val, "v5");
  // Second read only reaches servers that missed the write: quorum max is
  // ts=3, but the reader must return its previous value (Section 1).
  rd.invoke_read(net);
  ack.rcounter = 2;
  ack.ts = 3;
  ack.val = "v3";
  rd.on_message(net, server_id(1), ack);
  rd.on_message(net, server_id(2), ack);
  EXPECT_EQ(rd.last_read()->val, "v5");
  EXPECT_EQ(rd.last_read()->ts, 5);
}

// ----------------------------------------------------------------- maxmin

TEST(MaxminServer, RepliesOnlyAfterGossipQuorum) {
  const auto cfg = make_cfg(5, 2, 1);  // gossip quorum = 3
  maxmin_server srv(cfg, 0);
  capture net;
  message rd;
  rd.type = msg_type::read_req;
  rd.rcounter = 1;
  srv.on_message(net, reader_id(0), rd);
  // Broadcast to the other 4 servers, no reply to the reader yet (own
  // contribution counts as 1 of 3).
  ASSERT_EQ(net.out.size(), 4u);
  for (const auto& [to, m] : net.out) {
    EXPECT_TRUE(to.is_server());
    EXPECT_EQ(m.type, msg_type::gossip);
    EXPECT_EQ(m.origin, reader_id(0));
  }
  net.out.clear();

  // One gossip: still below quorum.
  message g;
  g.type = msg_type::gossip;
  g.origin = reader_id(0);
  g.rcounter = 1;
  g.ts = 7;
  g.val = "v7";
  srv.on_message(net, server_id(1), g);
  EXPECT_TRUE(net.out.empty());

  // Second foreign gossip reaches quorum: reply with the adopted max.
  g.ts = 3;
  g.val = "v3";
  srv.on_message(net, server_id(2), g);
  ASSERT_EQ(net.out.size(), 1u);
  EXPECT_EQ(net.out[0].first, reader_id(0));
  EXPECT_EQ(net.out[0].second.type, msg_type::read_ack);
  EXPECT_EQ(net.out[0].second.ts, 7);  // adopted the gathered max
  EXPECT_EQ(net.out[0].second.val, "v7");
  EXPECT_EQ(srv.stored_ts().num, 7);
}

TEST(MaxminServer, GossipBeforeReadRequestStillCounts) {
  const auto cfg = make_cfg(5, 2, 1);
  maxmin_server srv(cfg, 0);
  capture net;
  message g;
  g.type = msg_type::gossip;
  g.origin = reader_id(0);
  g.rcounter = 1;
  g.ts = 2;
  g.val = "v2";
  srv.on_message(net, server_id(1), g);
  srv.on_message(net, server_id(2), g);
  srv.on_message(net, server_id(3), g);
  EXPECT_TRUE(net.out.empty());  // no read_req received yet: no reply
  message rd;
  rd.type = msg_type::read_req;
  rd.rcounter = 1;
  srv.on_message(net, reader_id(0), rd);
  // Reply flows now (gossips 3 + self = 4 >= quorum 3).
  bool replied = false;
  for (const auto& [to, m] : net.out) {
    replied |= to == reader_id(0) && m.type == msg_type::read_ack;
  }
  EXPECT_TRUE(replied);
}

TEST(MaxminReader, ReturnsMinimumOfAdoptedMaxima) {
  const auto cfg = make_cfg(3, 1, 1);
  maxmin_reader rd(cfg, 0);
  capture net;
  rd.invoke_read(net);
  message ack;
  ack.type = msg_type::read_ack;
  ack.rcounter = 1;
  ack.ts = 9;
  ack.val = "v9";
  rd.on_message(net, server_id(0), ack);
  ack.ts = 7;
  ack.val = "v7";
  rd.on_message(net, server_id(1), ack);
  EXPECT_FALSE(rd.read_in_progress());
  EXPECT_EQ(rd.last_read()->val, "v7");  // min, per Section 1
}

// ------------------------------------------------------------------- MWMR

TEST(MwmrWriter, QueriesThenWritesMaxPlusOne) {
  const auto cfg = make_cfg(3, 1, 2, 0, 2);
  mwmr_writer w(cfg, 1);
  capture net;
  w.invoke_write(net, "x");
  ASSERT_EQ(net.out.size(), 3u);
  EXPECT_EQ(net.out[0].second.type, msg_type::query_req);
  net.out.clear();
  message qa;
  qa.type = msg_type::query_ack;
  qa.rcounter = 1;
  qa.ts = 6;
  w.on_message(net, server_id(0), qa);
  qa.ts = 9;
  w.on_message(net, server_id(1), qa);
  ASSERT_EQ(net.out.size(), 3u);
  EXPECT_EQ(net.out[0].second.type, msg_type::write_req);
  EXPECT_EQ(net.out[0].second.ts, 10);  // max + 1
  EXPECT_EQ(net.out[0].second.wid, 2);  // writer index 1 -> wid 2
  message wa;
  wa.type = msg_type::write_ack;
  wa.rcounter = 2;
  w.on_message(net, server_id(0), wa);
  w.on_message(net, server_id(2), wa);
  EXPECT_FALSE(w.write_in_progress());
  EXPECT_EQ(w.last_write_rounds(), 2);
}

TEST(LwwServer, LastWriteWinsOnEqualNumbers) {
  lww_server srv(make_cfg(3, 1, 1), 0);
  capture net;
  message w1;
  w1.type = msg_type::write_req;
  w1.ts = 1;
  w1.wid = 2;
  w1.val = "second-writer";
  srv.on_message(net, writer_id(1), w1);
  message w2 = w1;
  w2.wid = 1;
  w2.val = "first-writer";
  srv.on_message(net, writer_id(0), w2);
  // Equal ts number: the LATER arrival wins, regardless of wid.
  message rd;
  rd.type = msg_type::read_req;
  srv.on_message(net, reader_id(0), rd);
  EXPECT_EQ(net.out.back().second.val, "first-writer");
}

// --------------------------------------------------------------- registry

TEST(Registry, AllNamesConstructible) {
  for (const auto& name : protocol_names()) {
    auto proto = make_protocol(name);
    ASSERT_NE(proto, nullptr) << name;
    EXPECT_EQ(proto->name(), name);
    auto cfg = make_cfg(8, 1, 2, 0, 2, "oracle");
    auto srv = proto->make_server(cfg, 0);
    auto rd = proto->make_reader(cfg, 0);
    auto wr = proto->make_writer(cfg, 0);
    EXPECT_TRUE(srv->self().is_server());
    EXPECT_NE(as_reader(rd.get()), nullptr) << name;
    EXPECT_NE(as_writer(wr.get()), nullptr) << name;
    // clone() preserves identity.
    EXPECT_EQ(srv->clone()->self(), srv->self());
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(make_protocol("paxos"), nullptr);
}

TEST(Registry, RoundsMatchPaperTable) {
  EXPECT_EQ(make_protocol("fast_swmr")->read_rounds(), 1);
  EXPECT_EQ(make_protocol("fast_bft")->read_rounds(), 1);
  EXPECT_EQ(make_protocol("abd")->read_rounds(), 2);
  EXPECT_EQ(make_protocol("abd")->write_rounds(), 1);
  EXPECT_EQ(make_protocol("mwmr")->read_rounds(), 2);
  EXPECT_EQ(make_protocol("mwmr")->write_rounds(), 2);
  EXPECT_EQ(make_protocol("regular")->read_rounds(), 1);
  EXPECT_EQ(make_protocol("single_reader")->read_rounds(), 1);
}

TEST(Registry, FeasibilityDelegation) {
  EXPECT_TRUE(make_protocol("fast_swmr")->feasible(make_cfg(9, 2, 2)));
  EXPECT_FALSE(make_protocol("fast_swmr")->feasible(make_cfg(8, 2, 2)));
  EXPECT_TRUE(make_protocol("single_reader")->feasible(make_cfg(5, 2, 1)));
  EXPECT_FALSE(make_protocol("single_reader")->feasible(make_cfg(5, 2, 2)));
}

// ------------------------------------------------ LWW strawman end-to-end

TEST(NaiveFastMwmrLww, SequentialWritesReadBackCorrectly) {
  // The LWW strawman behaves fine sequentially; only the Section 7
  // adversary exposes it.
  auto cfg = make_cfg(4, 1, 2, 0, 2);
  sim::world w(cfg);
  w.install(*make_protocol("naive_fast_mwmr_lww"));
  rng r(5);
  w.invoke_write(0, "a");
  w.run_random(r);
  w.invoke_write(1, "b");
  w.run_random(r);
  w.invoke_read(0);
  w.run_random(r);
  EXPECT_EQ(w.last_read(0)->val, "b");
}

}  // namespace
}  // namespace fastreg
