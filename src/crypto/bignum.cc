#include "crypto/bignum.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace fastreg::crypto {

bignum::bignum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void bignum::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

bignum bignum::from_bytes(std::span<const std::uint8_t> be) {
  bignum n;
  for (std::uint8_t byte : be) {
    n = n.shl(8);
    n = n.add(bignum{byte});
  }
  return n;
}

std::vector<std::uint8_t> bignum::to_bytes() const {
  if (is_zero()) return {0};
  std::vector<std::uint8_t> out;
  const std::size_t bytes = (bit_length() + 7) / 8;
  out.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::size_t limb = i / 4;
    const std::size_t shift = (i % 4) * 8;
    out[bytes - 1 - i] =
        static_cast<std::uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

bignum bignum::from_hex(const std::string& hex) {
  bignum n;
  for (char c : hex) {
    std::uint32_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      continue;  // allow separators
    }
    n = n.shl(4).add(bignum{d});
  }
  return n;
}

std::string bignum::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      const std::uint32_t d = (limbs_[i] >> (nib * 4)) & 0xf;
      if (out.empty() && d == 0) continue;
      out.push_back(digits[d]);
    }
  }
  return out;
}

std::size_t bignum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool bignum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int bignum::compare(const bignum& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

bignum bignum::add(const bignum& o) const {
  bignum out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.normalize();
  return out;
}

bignum bignum::sub(const bignum& o) const {
  FASTREG_EXPECTS(compare(o) >= 0);
  bignum out;
  out.limbs_.resize(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.normalize();
  return out;
}

bignum bignum::mul(const bignum& o) const {
  if (is_zero() || o.is_zero()) return {};
  bignum out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + carry +
                          static_cast<std::uint64_t>(limbs_[i]) * o.limbs_[j];
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

bignum bignum::shl(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  bignum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.normalize();
  return out;
}

bignum bignum::shr(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return {};
  bignum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.normalize();
  return out;
}

std::pair<bignum, bignum> bignum::divmod(const bignum& o) const {
  FASTREG_EXPECTS(!o.is_zero());
  if (compare(o) < 0) return {bignum{}, *this};

  // Single-limb divisor: straightforward word-by-word division.
  if (o.limbs_.size() == 1) {
    const std::uint64_t d = o.limbs_[0];
    bignum q;
    q.limbs_.resize(limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, bignum{rem}};
  }

  // Knuth TAOCP vol. 2, Algorithm D, base 2^32. Normalize so the top
  // divisor limb has its high bit set, estimate each quotient digit from
  // the top two dividend limbs, and correct by at most two decrements.
  const std::size_t n = o.limbs_.size();
  const std::size_t m = limbs_.size() - n;
  const int shift = std::countl_zero(o.limbs_.back());
  const bignum vbn = o.shl(static_cast<std::size_t>(shift));
  bignum ubn = shl(static_cast<std::size_t>(shift));
  const auto& v = vbn.limbs_;
  auto& u = ubn.limbs_;
  u.resize(limbs_.size() + 1, 0);  // u gets an extra high limb

  constexpr std::uint64_t base = std::uint64_t{1} << 32;
  bignum q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t num =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = num / v[n - 1];
    std::uint64_t rhat = num % v[n - 1];
    while (qhat >= base ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= base) break;
    }
    // Multiply-and-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      const std::int64_t sub = static_cast<std::int64_t>(u[i + j]) -
                               static_cast<std::int64_t>(p & 0xffffffff) -
                               borrow;
      u[i + j] = static_cast<std::uint32_t>(sub);
      borrow = sub < 0 ? 1 : 0;
    }
    const std::int64_t top = static_cast<std::int64_t>(u[j + n]) -
                             static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(top);
    if (top < 0) {
      // qhat was one too large: add v back (happens with prob ~2/base).
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      u[j + n] += static_cast<std::uint32_t>(c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.normalize();
  bignum rem;
  rem.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  rem.normalize();
  rem = rem.shr(static_cast<std::size_t>(shift));
  return {q, rem};
}

bignum bignum::modexp(const bignum& exp, const bignum& m) const {
  FASTREG_EXPECTS(!m.is_zero());
  bignum base = mod(m);
  bignum result{1};
  result = result.mod(m);
  const std::size_t nbits = exp.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    result = result.mul(result).mod(m);
    if (exp.bit(i)) result = result.mul(base).mod(m);
  }
  return result;
}

bignum bignum::gcd(bignum a, bignum b) {
  while (!b.is_zero()) {
    bignum r = a.mod(b);
    a = b;
    b = r;
  }
  return a;
}

bignum bignum::modinv(const bignum& m) const {
  // Extended Euclid tracking coefficients with explicit signs, since our
  // bignum is unsigned.
  bignum r0 = m;
  bignum r1 = mod(m);
  bignum t0{0};
  bignum t1{1};
  bool t0_neg = false;
  bool t1_neg = false;
  while (!r1.is_zero()) {
    auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q * t1 with sign tracking.
    const bignum qt1 = q.mul(t1);
    bignum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign.
      if (t0.compare(qt1) >= 0) {
        t2 = t0.sub(qt1);
        t2_neg = t0_neg;
      } else {
        t2 = qt1.sub(t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0.add(qt1);
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }
  if (r0 != bignum{1}) return {};  // not invertible
  if (t0_neg) {
    return m.sub(t0.mod(m));
  }
  return t0.mod(m);
}

bignum bignum::random_below(const bignum& bound, rng& r) {
  FASTREG_EXPECTS(!bound.is_zero());
  const std::size_t nbits = bound.bit_length();
  for (;;) {
    bignum candidate;
    candidate.limbs_.assign((nbits + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<std::uint32_t>(r.next());
    }
    // Mask the top limb down to the bound's width.
    const std::size_t top_bits = nbits % 32;
    if (top_bits != 0) {
      candidate.limbs_.back() &= (std::uint32_t{1} << top_bits) - 1;
    }
    candidate.normalize();
    if (candidate.compare(bound) < 0) return candidate;
  }
}

bignum bignum::random_bits(std::size_t bits, rng& r) {
  FASTREG_EXPECTS(bits >= 2);
  bignum n;
  n.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : n.limbs_) limb = static_cast<std::uint32_t>(r.next());
  const std::size_t top = (bits - 1) % 32;
  n.limbs_.back() &= (top == 31) ? ~std::uint32_t{0}
                                 : ((std::uint32_t{1} << (top + 1)) - 1);
  n.limbs_.back() |= (std::uint32_t{1} << top);  // force exact width
  n.normalize();
  return n;
}

bool bignum::is_probable_prime(rng& r, int rounds) const {
  if (compare(bignum{2}) < 0) return false;
  if (!is_odd()) return *this == bignum{2};
  static const std::uint32_t small_primes[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                               29, 31, 37, 41, 43, 47, 53, 59};
  for (std::uint32_t p : small_primes) {
    if (*this == bignum{p}) return true;
    if (mod(bignum{p}).is_zero()) return false;
  }
  // Write n-1 = d * 2^s.
  const bignum n_minus_1 = sub(bignum{1});
  bignum d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d.shr(1);
    ++s;
  }
  const bignum two{2};
  for (int round = 0; round < rounds; ++round) {
    const bignum a =
        two.add(bignum::random_below(sub(bignum{3}), r));  // in [2, n-2]
    bignum x = a.modexp(d, *this);
    if (x == bignum{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = x.mul(x).mod(*this);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

bignum bignum::random_prime(std::size_t bits, rng& r) {
  for (;;) {
    bignum candidate = random_bits(bits, r);
    if (!candidate.is_odd()) candidate = candidate.add(bignum{1});
    if (candidate.is_probable_prime(r)) return candidate;
  }
}

std::uint64_t bignum::low_u64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

}  // namespace fastreg::crypto
