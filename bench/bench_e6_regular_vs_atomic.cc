// E6 -- Section 8: "atomic reads must write". A fast *regular* register
// exists for t < S/2 and ANY number of readers; a fast *atomic* register
// caps readers at R < S/t - 2. Same latency when both exist -- the
// difference is purely the consistency/reader-count trade-off.
//
// Sweep R with S, t fixed: report feasibility (theory), measured latency,
// and which semantics each protocol's histories satisfy.
#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

int main() {
  std::printf("E6: regular vs atomic fast registers (Section 8)\n\n");
  const std::uint32_t S = 13, tf = 2;  // fast atomic iff R < 13/2-2 = 4.5
  table t({"R", "fast_atomic_possible", "fast_regular_possible",
           "atomic_read_p50", "regular_read_p50", "regular_is_atomic_too",
           "abd_read_p50(any R)"});
  for (std::uint32_t R : {1u, 2u, 4u, 5u, 8u, 16u}) {
    system_config cfg;
    cfg.servers = S;
    cfg.t_failures = tf;
    cfg.readers = R;
    workload_options opt;
    opt.num_writes = 15;
    opt.reads_per_reader = 8;
    opt.concurrent = true;
    opt.seed = 7;

    std::string atomic_lat = "-";
    const bool atomic_ok = fast_swmr_feasible(S, tf, R);
    if (atomic_ok) {
      const auto rep = run_measured(*make_protocol("fast_swmr"), cfg, opt);
      atomic_lat = fmt(rep.read_latency.p50());
    }
    const auto reg = run_measured(*make_protocol("regular"), cfg, opt);
    const auto abd = run_measured(*make_protocol("abd"), cfg, opt);
    const bool reg_regular_ok = checker::check_swmr_regular(reg.hist).ok;
    const bool reg_atomic_too = checker::check_swmr_atomicity(reg.hist).ok;
    t.add_row({std::to_string(R), atomic_ok ? "yes" : "no", "yes",
               atomic_lat, fmt(reg.read_latency.p50()),
               reg_atomic_too ? "this run: yes" : "this run: NO",
               fmt(abd.read_latency.p50())});
    if (!reg_regular_ok) {
      std::printf("!! regular semantics violated at R=%u\n", R);
    }
  }
  t.print();
  std::printf(
      "\nexpected shape: regular stays fast at every R; fast atomic cuts "
      "off at R >= S/t - 2 = %u; ABD serves any R at ~2x read latency.\n"
      "('regular_is_atomic_too' shows random runs rarely exhibit the "
      "new/old inversion -- the E2 adversary is what separates them.)\n",
      S / tf - 2);
  return 0;
}
