// Post-mortem half of the flight recorder (src/obs/recorder.h): parses
// per-node recorder dumps, merges them into one causally-ordered
// timeline, checks the ordering invariants the recorder's clock domains
// guarantee, and renders the result as a per-trace narrative or Chrome
// trace-event (catapult) JSON for about:tracing / Perfetto.
//
// Dump grammar (one event per line, '#' lines are comments):
//   rec node="r0" dom=sim t=12 trace=0x2a span=0 ev=send type=READ
//       peer="s0" obj=42 epoch=0 ts=7
// dom is `sim` (simulator ticks, globally ordered by the scheduler) or
// `ns` (steady-clock nanoseconds of the one process every TCP reactor
// shares). Timestamps are comparable only within a domain; the merge
// sorts (domain, t) and the causal check never crosses domains.
//
// tools/trace_merge is the CLI over this; test_recorder.cc exercises it
// on real failure dumps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fastreg::obs {

/// One parsed dump line. `seq` is the event's position in its source
/// dump (the per-node rings are oldest-first), used as the sort tiebreak
/// so equal-timestamp events keep their capture order.
struct timeline_event {
  std::string node{};
  bool sim_domain{false};
  std::uint64_t t{0};
  std::uint64_t trace{0};
  std::uint32_t span{0};
  std::string ev{};
  std::string type{};
  std::string peer{};
  std::uint64_t obj{0};
  std::uint64_t epoch{0};
  std::int64_t ts{0};
  std::size_t seq{0};
};

/// "" when `text` is a well-formed recorder dump; else a diagnostic
/// naming the first offending line.
[[nodiscard]] std::string validate_recorder_dump(const std::string& text);

/// Parses a dump (validate first; malformed lines are skipped here).
[[nodiscard]] std::vector<timeline_event> parse_recorder_dump(
    const std::string& text);

/// Joins per-node event lists into one timeline ordered by
/// (domain, t, seq): sim-tick events first (globally ordered), then
/// ns events (one shared steady clock), never interleaving domains.
[[nodiscard]] std::vector<timeline_event> merge_events(
    std::vector<std::vector<timeline_event>> per_node);

/// Causal-order check on a merged timeline: within one clock domain, a
/// message's recv must not precede the earliest matching send (same
/// trace, span, type, sender, receiver, object). A recv with no
/// matching send is tolerated — the send may have been overwritten in
/// its ring. Returns "" or a diagnostic for the first violation.
[[nodiscard]] std::string validate_timeline(
    const std::vector<timeline_event>& merged);

/// Human-readable per-trace narrative: for every trace id, its events
/// in merged order, runs with the same (node, event, type) coalesced
/// into one line with the peer set. Untraced events are omitted.
[[nodiscard]] std::string render_narrative(
    const std::vector<timeline_event>& merged);

/// Chrome trace-event JSON (catapult "JSON array format"): one process
/// per node, one thread lane per trace, an instant event per recorder
/// entry and a complete ("X") span covering each (node, trace) pair.
/// ts is microseconds: ns/1000 in the ns domain, the raw tick in sim.
[[nodiscard]] std::string render_catapult(
    const std::vector<timeline_event>& merged);

/// Structural validation of catapult JSON (no browser in CI): the text
/// must be one JSON array of objects, every object carries a string
/// "ph", and every non-metadata event has numeric "ts"/"pid"/"tid" and
/// a "name". Returns "" or a diagnostic.
[[nodiscard]] std::string validate_catapult(const std::string& text);

}  // namespace fastreg::obs
