// E9 -- wait-freedom under failures (Sections 2-4): reads and writes must
// terminate regardless of which t servers fail and when, including crashes
// that tear a broadcast in half. Measures latency impact of the crash
// pattern on the fast register and verifies every op still completes in
// one round-trip.
//
// Part 2: crash RECOVERY cost vs fsync policy. A store runs a Zipf load
// with per-server durability on (src/persist), one server is killed and
// restarted, and the row reports what the policy cost during the load
// (wall-clock, fsync count) and what recovery cost at restart (replay
// wall-clock, log/snapshot bytes replayed). The I/O is real even on the
// simulator -- the op log and snapshots are ordinary files.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "common/rng.h"
#include "persist/durable.h"
#include "registers/registry.h"
#include "store/sim_store.h"

using namespace fastreg;
using namespace fastreg::benchutil;

namespace {

std::uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

void recovery_row(table& t, persist::fsync_policy policy) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fastreg_e9_recovery_" + std::to_string(::getpid()) +
                    "_" + std::string(persist::to_string(policy)));
  std::filesystem::create_directories(dir);

  store::store_config cfg;
  cfg.base.servers = 5;
  cfg.base.t_failures = 1;
  cfg.base.readers = 2;
  cfg.base.writers = 1;
  cfg.shard_protocols = {"abd"};
  cfg.persist.dir = dir.string();
  cfg.persist.fsync = policy;
  cfg.persist.snapshot_every = 256;
  store::sim_store s(cfg);
  rng r(42);
  const zipf_sampler zipf(32, 0.99);
  const auto key = [&] { return "k" + std::to_string(zipf.sample(r)); };

  const std::uint32_t crash_index = cfg.base.S() - 1;
  std::uint32_t puts_left = 1000;
  std::vector<std::uint32_t> gets_left(cfg.base.R(), 500);
  std::uint64_t put_seq = 0, guard = 0;
  const auto load_t0 = std::chrono::steady_clock::now();
  for (;;) {
    FASTREG_CHECK(++guard < 100'000'000);
    bool invoked = false;
    if (puts_left > 0 && !s.writer_client(0).op_in_progress()) {
      --puts_left;
      invoked = true;
      s.invoke_put(0, key(), "v" + std::to_string(++put_seq));
    }
    for (std::uint32_t i = 0; i < cfg.base.R(); ++i) {
      if (gets_left[i] == 0 || s.reader_client(i).op_in_progress()) continue;
      --gets_left[i];
      invoked = true;
      s.invoke_get(i, key());
    }
    if (s.world().in_transit().empty()) {
      if (invoked) continue;
      break;
    }
    s.run_random(r, 1);
  }
  const double load_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - load_t0)
          .count();

  // What the restarted server will replay.
  const auto log_path =
      persist::server_durability::log_path_for(dir.string(), crash_index);
  const auto snap_path =
      persist::server_durability::snap_path_for(dir.string(), crash_index);
  const std::uint64_t log_b = file_bytes(log_path);
  const std::uint64_t snap_b = file_bytes(snap_path);
  const std::uint64_t records =
      s.server_at(crash_index).durable()->records_appended();

  s.world().crash(server_id(crash_index));
  const auto rec_t0 = std::chrono::steady_clock::now();
  auto& ns = s.restart_server(crash_index);
  const double replay_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - rec_t0)
          .count();

  const auto res = s.histories().verify();
  t.add_row({persist::to_string(policy), std::to_string(2000),
             std::to_string(records), std::to_string(log_b),
             std::to_string(snap_b), fmt(load_ms, 1), fmt(replay_us, 1),
             std::to_string(ns.recovered_objects()),
             res.ok ? "yes" : "NO"});
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

int main() {
  std::printf("E9: wait-freedom and latency under server crashes\n\n");
  table t({"proto", "S", "t", "crashed", "when", "read_p50", "write_p50",
           "all_complete", "atomic", "fast"});
  struct c3 {
    const char* proto;
    std::uint32_t S, t, R;
  };
  for (const auto c : {c3{"fast_swmr", 16, 3, 2}, c3{"abd", 7, 3, 2}}) {
    for (const std::uint32_t crashes : {0u, c.t / 2 + 1, c.t}) {
      for (const bool midway : {false, true}) {
        if (crashes == 0 && midway) continue;
        system_config cfg;
        cfg.servers = c.S;
        cfg.t_failures = c.t;
        cfg.readers = c.R;
        workload_options opt;
        opt.num_writes = 20;
        opt.reads_per_reader = 10;
        opt.concurrent = true;
        opt.crash_servers = crashes;
        opt.crash_midway = midway;
        const auto rep = run_measured(*make_protocol(c.proto), cfg, opt);
        const int rd_limit = std::string(c.proto) == "abd" ? 2 : 1;
        t.add_row(
            {c.proto, std::to_string(c.S), std::to_string(c.t),
             std::to_string(crashes), midway ? "mid-run(torn)" : "up-front",
             fmt(rep.read_latency.p50()), fmt(rep.write_latency.p50()),
             rep.all_complete ? "yes" : "NO",
             checker::check_swmr_atomicity(rep.hist).ok ? "yes" : "NO",
             checker::check_fastness(rep.hist, rd_limit, 1).ok ? "yes"
                                                               : "NO"});
      }
    }
  }
  t.print();
  std::printf("\nexpected: all_complete/atomic/fast = yes everywhere; "
              "latency is essentially flat (clients wait for S-t replies "
              "regardless of crashes -- that is what wait-freedom buys).\n");

  std::printf("\nE9 part 2: crash recovery vs fsync policy (abd store, "
              "S=5/t=1, 2000-op Zipf load; one server killed then "
              "restarted with snapshot + log replay)\n\n");
  table rec({"fsync", "ops", "log_records", "log_bytes", "snap_bytes",
             "load_ms", "replay_us", "recovered_objs", "atomic"});
  for (const auto policy :
       {persist::fsync_policy::never, persist::fsync_policy::interval,
        persist::fsync_policy::every_op}) {
    recovery_row(rec, policy);
  }
  rec.print();
  std::printf(
      "\nexpected shape: load_ms climbs never -> interval -> every_op "
      "(the fsync bill is paid at append time), while replay_us stays "
      "flat -- recovery reads the same snapshot + log tail whatever the "
      "policy, and snapshots keep the tail (and so replay) bounded. "
      "recovered_objs > 0 and atomic = yes: the rejoined server serves "
      "its replayed state and the full history still linearizes.\n");
  return 0;
}
