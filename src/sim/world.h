// The paper's system model (Section 2.2) as an executable, deterministic
// discrete-event simulator.
//
//   "The state of communication channels is viewed as a set of messages
//    mset containing messages that are sent but not yet received. ...
//    Computation proceeds in steps <p, M>: p removes M from mset, applies
//    M and its current state to A_p, adopts the new state and puts the
//    output messages in mset."
//
// `world` holds the automata and the global mset. Three ways to drive it:
//
//  1. Manual delivery (the adversary): deliver(id) / deliver_matching(...)
//     executes a single step and leaves everything else in transit. This
//     is exactly the partial-run surgery the lower-bound proofs perform.
//  2. Random schedule: run_random() repeatedly delivers a uniformly random
//     in-transit message -- an aggressive asynchrony stress.
//  3. Timed schedule: run_timed() assigns each message a latency from a
//     delay model and delivers in timestamp order -- used for latency
//     benches (E1, E3, E8...).
//
// Failure injection: crash(p) silences a process; crash_after_sends(p, k)
// makes p's NEXT send burst stop after k messages and then crashes it
// (the paper's "may crash after sending messages to an arbitrary subset").
// Byzantine behaviours are injected by replacing a server's automaton
// (see adversary/byzantine.h).
//
// world is deep-copyable via fork(): the adversary uses this to branch a
// partial run into the indistinguishable siblings the proofs compare.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "checker/history.h"
#include "common/check.h"
#include "common/rng.h"
#include "obs/recorder.h"
#include "registers/automaton.h"

namespace fastreg::sim {

/// A message in transit (an element of the paper's mset). A batched send
/// (netout::send_batch) travels as ONE envelope: `msg` holds the first
/// message and `tail` the rest, so the whole batch costs a single latency
/// sample and a single delivery step -- the simulator's model of the
/// per-packet overhead batching amortizes. Register protocols never
/// batch, so adversary code matching on `msg` is unaffected.
struct envelope {
  std::uint64_t id{0};
  process_id from{};
  process_id to{};
  message msg{};
  std::vector<message> tail{};
  /// Logical time the message was sent.
  std::uint64_t sent_at{0};
  /// Delivery due time; assigned by run_timed, ignored by other drivers.
  std::uint64_t due_at{0};

  [[nodiscard]] std::size_t message_count() const { return 1 + tail.size(); }
};

/// Per-message latency model for run_timed.
class delay_model {
 public:
  virtual ~delay_model() = default;
  virtual std::uint64_t sample(rng& r, const process_id& from,
                               const process_id& to) = 0;
};

/// Uniform latency in [lo, hi] time units. Degenerate ranges are caught at
/// construction: lo > hi would otherwise wrap hi - lo + 1 and sample from
/// almost the whole uint64 range. lo == hi is valid (constant delay).
class uniform_delay final : public delay_model {
 public:
  uniform_delay(std::uint64_t lo, std::uint64_t hi) : lo_(lo), hi_(hi) {
    FASTREG_EXPECTS(lo <= hi);
  }
  std::uint64_t sample(rng& r, const process_id&, const process_id&) override {
    return lo_ + r.below(hi_ - lo_ + 1);
  }

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

class world final : public netout {
 public:
  explicit world(system_config cfg);

  world(const world&) = delete;
  world& operator=(const world&) = delete;
  world(world&&) = default;
  world& operator=(world&&) = default;

  /// Instantiates writer(s), readers and servers from a protocol.
  void install(const protocol& proto);

  /// Swaps in a replacement automaton (Byzantine injection, memory loss).
  void replace_automaton(const process_id& p, std::unique_ptr<automaton> a);

  // ------------------------------------------------------------ queries --
  [[nodiscard]] const system_config& config() const { return cfg_; }
  [[nodiscard]] automaton* get(const process_id& p);
  [[nodiscard]] reader_iface* reader(std::uint32_t i);
  [[nodiscard]] writer_iface* writer(std::uint32_t i = 0);
  [[nodiscard]] const std::deque<envelope>& in_transit() const {
    return mset_;
  }
  [[nodiscard]] std::uint64_t now() const { return now_; }
  [[nodiscard]] bool crashed(const process_id& p) const {
    return crashed_.contains(p);
  }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_count_; }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_count_;
  }
  /// Transport units put in flight: a batched send counts once here but
  /// message_count() times in messages_sent(). The gap is the batching win.
  [[nodiscard]] std::uint64_t envelopes_sent() const {
    return envelopes_sent_;
  }

  // -------------------------------------------------------- invocations --
  /// Invokes a read on reader i; records the invocation in the history.
  void invoke_read(std::uint32_t reader_index);
  /// Invokes a write; single-writer convenience uses writer 0.
  void invoke_write(value_t v) { invoke_write(0, std::move(v)); }
  void invoke_write(std::uint32_t writer_index, value_t v);

  [[nodiscard]] bool client_busy(const process_id& p);
  /// Result of reader i's most recent completed read.
  [[nodiscard]] std::optional<read_result> last_read(std::uint32_t reader_index);

  /// Runs `fn` as a locally-triggered step of process p (a client
  /// invocation that is not a register read/write -- e.g. the store
  /// front-end's get/put) and flushes p's sends into mset. Callers manage
  /// their own histories and completion polling.
  void invoke_step(const process_id& p,
                   const std::function<void(netout&)>& fn);

  // ----------------------------------------------------- manual driving --
  /// Executes step <to, {m}> for the envelope with this id. Returns false
  /// if the id is no longer in transit. Delivery to a crashed process
  /// consumes the message without a step.
  bool deliver(std::uint64_t envelope_id);

  using envelope_pred = std::function<bool(const envelope&)>;
  /// Delivers every currently-in-transit envelope matching the predicate
  /// (snapshot semantics: messages sent *during* these deliveries are not
  /// delivered). Returns the number delivered.
  std::size_t deliver_matching(const envelope_pred& pred);
  [[nodiscard]] std::vector<std::uint64_t> find_envelopes(
      const envelope_pred& pred) const;

  /// Drops matching envelopes (they are lost forever; used to model the
  /// loss of messages addressed to crashed processes).
  std::size_t drop_matching(const envelope_pred& pred);

  // ----------------------------------------------------- bulk schedules --
  /// Delivers uniformly random messages until mset is empty or max_steps.
  /// Returns the number of steps executed.
  std::uint64_t run_random(rng& r, std::uint64_t max_steps = 1'000'000);
  /// Runs until `done` returns true (checked after every step), mset is
  /// empty, or max_steps. Random order.
  std::uint64_t run_random_until(rng& r, const std::function<bool()>& done,
                                 std::uint64_t max_steps = 1'000'000);
  /// Delivers messages in due-time order; each newly sent message gets a
  /// latency from the model. Simulated clock advances to each due time.
  std::uint64_t run_timed(rng& r, delay_model& delays,
                          std::uint64_t max_steps = 1'000'000);
  std::uint64_t run_timed_until(rng& r, delay_model& delays,
                                const std::function<bool()>& done,
                                std::uint64_t max_steps = 1'000'000);

  // ---------------------------------------------------------- failures --
  void crash(const process_id& p);
  /// Arms a partial-broadcast crash: during p's next send burst only the
  /// first `deliver_first` messages reach mset, then p crashes.
  void crash_after_sends(const process_id& p, std::size_t deliver_first);
  /// Un-crashes p and swaps in `a` as its automaton -- the crash model's
  /// "restart": the replacement starts from whatever state its
  /// constructor rebuilt (empty, or replayed from persistent storage --
  /// see src/persist). Messages sent to p while it was crashed were
  /// consumed, exactly what a rebooted process never receiving them
  /// looks like.
  void restart(const process_id& p, std::unique_ptr<automaton> a);

  // --------------------------------------------------------- partitions --
  // Link-level partitions, the asynchronous model's "messages between a
  // and b are delayed indefinitely": envelopes on a blocked link STAY in
  // transit (never lost) and the bulk schedules skip them; heal makes
  // them deliverable again, modeling the post-partition flush. Manual
  // deliver()/deliver_matching() ignore partitions on purpose -- the
  // adversary IS the network and may thread messages however it likes.

  /// Blocks the link between a and b in both directions.
  void partition(const process_id& a, const process_id& b);
  /// Unblocks the link between a and b.
  void heal(const process_id& a, const process_id& b);
  void heal_all();
  [[nodiscard]] bool link_blocked(const process_id& a,
                                  const process_id& b) const;
  [[nodiscard]] std::size_t blocked_links() const { return blocked_.size(); }

  // ------------------------------------------------------------ history --
  [[nodiscard]] const checker::history& hist() const { return history_; }

  /// Deep copy: clones all automata and the in-transit set.
  [[nodiscard]] world fork() const;

  // netout (valid only inside a step; automata receive *this).
  void send(const process_id& to, message m) override;
  void send_batch(const process_id& to, std::vector<message> msgs) override;

 private:
  struct client_state {
    bool pending{false};
    std::size_t op_index{0};
    std::uint64_t completed_before{0};
  };

  void do_step(const process_id& to, const envelope& env);
  void poll_completion(const process_id& p);
  void flush_sends(const process_id& from);
  [[nodiscard]] std::size_t index_of(const process_id& p) const;
  /// Cached obs::recorder_for lookup (the recorders are process-global
  /// and outlive every world; the cache only avoids the registry lock).
  /// Deliberately not copied by fork(): it rebuilds lazily.
  [[nodiscard]] obs::recorder& rec_for(const process_id& p);

  system_config cfg_;
  std::vector<std::unique_ptr<automaton>> procs_;  // writers, readers, servers
  std::deque<envelope> mset_;
  std::uint64_t next_envelope_id_{1};
  std::uint64_t now_{0};
  std::unordered_set<process_id> crashed_;
  /// Blocked links as order-normalized endpoint pairs (deterministic
  /// iteration keeps fork() and schedules reproducible).
  std::set<std::pair<process_id, process_id>> blocked_;
  std::unordered_map<process_id, std::size_t> armed_partial_crash_;
  std::unordered_map<process_id, client_state> clients_;
  checker::history history_;
  std::uint64_t sent_count_{0};
  std::uint64_t delivered_count_{0};
  std::uint64_t envelopes_sent_{0};

  // Sends captured during the current step, flushed into mset_ afterwards
  // (possibly truncated by an armed partial-broadcast crash). Each entry
  // becomes one envelope; only batched sends pay for a tail vector, so
  // the register protocols' single-message hot path stays allocation-free.
  struct outbox_entry {
    process_id to{};
    message first{};
    std::vector<message> tail{};
  };
  std::vector<outbox_entry> outbox_;
  std::unordered_map<process_id, obs::recorder*> rec_cache_;
};

}  // namespace fastreg::sim
