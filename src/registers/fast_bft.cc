#include "registers/fast_bft.h"

#include "common/check.h"
#include "obs/trace.h"

namespace fastreg {

bool valid_signed_ts(const system_config& cfg, const message& m) {
  if (m.ts == k_initial_ts) {
    // The initial timestamp is not signed (Section 6.1).
    return m.sig.empty() && m.val.empty() && m.prev.empty();
  }
  if (m.ts < 0) return false;
  FASTREG_EXPECTS(cfg.sigs != nullptr);
  const auto payload = signed_payload(m);
  return cfg.sigs->verify(
      writer_id(0), std::span<const std::uint8_t>(payload.data(), payload.size()),
      std::span<const std::uint8_t>(m.sig.data(), m.sig.size()));
}

// ---------------------------------------------------------------- writer --

fast_bft_writer::fast_bft_writer(system_config cfg, object_id obj)
    : cfg_(std::move(cfg)), obj_(obj) {
  FASTREG_EXPECTS(cfg_.sigs != nullptr);
}

void fast_bft_writer::invoke_write(netout& net, value_t v) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/true);
  obs::round_issue(self(), 1);
  cur_val_ = std::move(v);
  acks_.clear();
  message m;
  m.type = msg_type::write_req;
  // The signature binds the object id: set it before signing so verifiers
  // (which hash m.obj) accept the message only on this object's stream.
  m.obj = obj_;
  m.ts = ts_;
  m.val = cur_val_;
  m.prev = last_val_;
  m.rcounter = 0;
  const auto payload = signed_payload(m);
  m.sig = cfg_.sigs->sign(
      writer_id(0),
      std::span<const std::uint8_t>(payload.data(), payload.size()));
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void fast_bft_writer::on_message(netout&, const process_id& from,
                                 const message& m) {
  if (!pending_ || m.type != msg_type::write_ack || !from.is_server()) return;
  // Line 6: wait for valid WRITEACKs carrying the current signed ts. The
  // writer knows its own signature is valid; checking ts equality suffices
  // (a malicious server cannot forge an ack with the right ts for a future
  // write, and stale acks carry stale timestamps).
  if (m.ts != ts_ || m.rcounter != 0) return;
  if (!valid_signed_ts(cfg_, m)) return;
  acks_.insert(from.index);
  if (acks_.size() >= cfg_.quorum()) {
    pending_ = false;
    last_val_ = cur_val_;
    ts_ += 1;
    completed_ += 1;
    obs::round_ack(self(), 1);
    obs::op_end(self(), 1);
  }
}

std::unique_ptr<automaton> fast_bft_writer::clone() const {
  return std::make_unique<fast_bft_writer>(*this);
}

void fast_bft_writer::seed_writer(const register_snapshot& migrated) {
  FASTREG_EXPECTS(!pending_);
  if (migrated.ts + 1 > ts_) {
    ts_ = migrated.ts + 1;
    last_val_ = migrated.val;
  }
}

// ---------------------------------------------------------------- reader --

fast_bft_reader::fast_bft_reader(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {
  FASTREG_EXPECTS(cfg_.sigs != nullptr);
}

void fast_bft_reader::invoke_read(netout& net) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/false);
  obs::round_issue(self(), 1);
  rcounter_ += 1;
  acks_.clear();
  ack_from_.clear();
  // Lines 13-14: write back the highest signed timestamp (with its writer
  // signature) observed by the previous read.
  message m;
  m.type = msg_type::read_req;
  m.ts = maxts_.tv.ts;
  m.val = maxts_.tv.val;
  m.prev = maxts_.tv.prev;
  m.sig = maxts_.sig;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void fast_bft_reader::on_message(netout&, const process_id& from,
                                 const message& m) {
  if (!pending_ || m.type != msg_type::read_ack || !from.is_server()) return;
  if (m.rcounter != rcounter_) return;
  if (ack_from_.contains(from.index)) return;
  // Line 15 "receivevalid": discard acks that are provably malicious --
  // invalid writer signature, a timestamp lower than the one this reader
  // just wrote back, or a seen set not containing the reader itself.
  if (!valid_signed_ts(cfg_, m) || m.ts < maxts_.tv.ts ||
      !m.seen.contains(self())) {
    discarded_ += 1;
    return;
  }
  ack_from_.insert(from.index);
  acks_.push_back(m);
  if (acks_.size() >= cfg_.quorum()) decide();
}

void fast_bft_reader::decide() {
  ts_t max_ts = k_initial_ts;
  for (const auto& a : acks_) max_ts = std::max(max_ts, a.ts);

  std::vector<seen_set> max_seen;
  signed_value max_val;
  max_val.tv.ts = max_ts;
  for (const auto& a : acks_) {
    if (a.ts != max_ts) continue;
    max_seen.push_back(a.seen);
    max_val.tv.val = a.val;
    max_val.tv.prev = a.prev;
    max_val.sig = a.sig;
  }

  maxts_ = max_val;

  // Line 19 with the arbitrary-failure threshold S - a*t - (a-1)*b.
  last_witness_ =
      fast_read_predicate_witness(std::span<const seen_set>(max_seen),
                                  cfg_.S(), cfg_.t(), cfg_.b(), cfg_.R());
  read_result res;
  res.rounds = 1;
  if (last_witness_ > 0 || max_ts == k_initial_ts) {
    res.ts = max_ts;
    res.val = max_val.tv.val;
  } else {
    res.ts = max_ts - 1;
    res.val = max_val.tv.prev;
  }
  pending_ = false;
  completed_ += 1;
  last_result_ = std::move(res);
  obs::round_ack(self(), 1);
  obs::op_end(self(), 1);
}

std::unique_ptr<automaton> fast_bft_reader::clone() const {
  return std::make_unique<fast_bft_reader>(*this);
}

// ---------------------------------------------------------------- server --

fast_bft_server::fast_bft_server(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index), counters_(cfg_.R() + 1, 0) {
  FASTREG_EXPECTS(cfg_.sigs != nullptr);
}

void fast_bft_server::on_message(netout& net, const process_id& from,
                                 const message& m) {
  if (m.type != msg_type::write_req && m.type != msg_type::read_req) return;
  if (from.is_server()) return;
  const std::uint32_t slot = client_slot(from);
  if (slot >= counters_.size()) return;
  if (m.rcounter < counters_[slot]) return;
  // Line 26 "receivevalid": drop messages whose timestamp is not properly
  // signed by the writer (malicious readers could otherwise inject fake
  // timestamps; in our model readers are correct, but the check is what
  // gives the protocol its stated properties).
  if (!valid_signed_ts(cfg_, m)) return;

  if (m.ts > cur_.tv.ts) {
    cur_ = signed_value{tagged_value{m.ts, m.val, m.prev}, m.sig};
    seen_.clear();
    seen_.insert(from);
  } else {
    seen_.insert(from);
  }
  counters_[slot] = m.rcounter;

  message reply;
  reply.type = m.type == msg_type::read_req ? msg_type::read_ack
                                            : msg_type::write_ack;
  reply.ts = cur_.tv.ts;
  reply.val = cur_.tv.val;
  reply.prev = cur_.tv.prev;
  reply.sig = cur_.sig;
  reply.seen = seen_;
  reply.rcounter = m.rcounter;
  net.send(from, reply);
}

std::unique_ptr<automaton> fast_bft_server::clone() const {
  return std::make_unique<fast_bft_server>(*this);
}

register_snapshot fast_bft_server::peek_state() const {
  return {cur_.tv.ts, 0, cur_.tv.val, cur_.tv.prev, cur_.sig};
}

void fast_bft_server::seed_state(const register_snapshot& s) {
  // The signature travels with the state: it still verifies because it
  // covers (obj, ts, val, prev) and migration never rewrites those.
  cur_ = signed_value{tagged_value{s.ts, s.val, s.prev}, s.sig};
  seen_ = seen_universe();
}

// -------------------------------------------------------------- protocol --

std::unique_ptr<automaton> fast_bft_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id obj) const {
  FASTREG_EXPECTS(index == 0);
  return std::make_unique<fast_bft_writer>(cfg, obj);
}

std::unique_ptr<automaton> fast_bft_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<fast_bft_reader>(cfg, index);
}

std::unique_ptr<automaton> fast_bft_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<fast_bft_server>(cfg, index);
}

}  // namespace fastreg
