// Latency sample accumulators with percentile queries: `stats` retains
// every sample (exact percentiles via sort), `stream_hist` folds samples
// into an obs::histogram in O(1) memory (bucketed percentiles, ~9%
// worst-case relative error) for runs too long to keep every sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace fastreg::benchutil {

class stats {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Percentile; p outside [0, 100] aborts (contract check), no samples
  /// returns 0. Linear interpolation on the sorted samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50); }
  [[nodiscard]] double p99() const { return percentile(99); }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_{false};
};

/// Streaming counterpart of `stats`: same add/percentile surface, but
/// samples land in a fixed-bucket log-scale obs::histogram instead of a
/// vector. Doubles are scaled to fixed point (x1024) before bucketing,
/// so sub-integer latencies (e.g. fractional microseconds) keep their
/// resolution; count/mean/min/max stay exact, percentiles inherit the
/// histogram's ~9% bucket quantization (clamped to observed [min, max]).
class stream_hist {
 public:
  static constexpr double k_scale = 1024.0;

  void add(double sample);
  [[nodiscard]] std::uint64_t count() const { return hist_.count(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return count() == 0 ? 0 : min_; }
  [[nodiscard]] double max() const { return count() == 0 ? 0 : max_; }
  /// Percentile; p outside [0, 100] aborts (contract check), no samples
  /// returns 0.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50); }
  [[nodiscard]] double p99() const { return percentile(99); }
  void reset();

 private:
  obs::histogram hist_;
  double sum_{0};
  double min_{0};
  double max_{0};
};

/// "123.4" with the given precision; "-" when no samples.
[[nodiscard]] std::string fmt(double v, int precision = 1);

}  // namespace fastreg::benchutil
