#include "registers/maxmin.h"

#include "common/check.h"
#include "obs/trace.h"

namespace fastreg {

// --------------------------------------------------------- maxmin_server --

maxmin_server::maxmin_server(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void maxmin_server::on_message(netout& net, const process_id& from,
                               const message& m) {
  switch (m.type) {
    case msg_type::write_req: {
      if (from.is_server()) return;
      if (m.wts() > ts_) {
        ts_ = m.wts();
        val_ = m.val;
      }
      message reply;
      reply.type = msg_type::write_ack;
      reply.ts = m.ts;
      reply.wid = m.wid;
      reply.rcounter = m.rcounter;
      net.send(from, reply);
      return;
    }
    case msg_type::read_req: {
      if (!from.is_reader()) return;
      auto& g = gathers_[{from.index, m.rcounter, m.attempt}];
      g.got_read_req = true;
      // Broadcast our current timestamp to the other servers, tagged with
      // the read instance it serves. Our own contribution is folded in
      // directly rather than routed through the network.
      message gossip;
      gossip.type = msg_type::gossip;
      gossip.ts = ts_.num;
      gossip.wid = ts_.wid;
      gossip.val = val_;
      gossip.origin = from;
      gossip.rcounter = m.rcounter;
      for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
        if (i != index_) net.send(server_id(i), gossip);
      }
      if (g.senders.insert(index_).second && ts_ > g.max_ts) {
        g.max_ts = ts_;
        g.max_val = val_;
      }
      maybe_reply(net, from, m.rcounter, g);
      return;
    }
    case msg_type::gossip: {
      if (!from.is_server()) return;
      auto& g = gathers_[{m.origin.index, m.rcounter, m.attempt}];
      if (!g.senders.insert(from.index).second) return;
      if (m.wts() > g.max_ts) {
        g.max_ts = m.wts();
        g.max_val = m.val;
      }
      maybe_reply(net, m.origin, m.rcounter, g);
      return;
    }
    default:
      return;
  }
}

void maxmin_server::maybe_reply(netout& net, const process_id& reader,
                                std::uint64_t rc, gather& g) {
  if (g.replied || !g.got_read_req) return;
  if (g.senders.size() < gossip_quorum()) return;
  // Adopt the gathered maximum (the "max" half of max-min), then answer.
  if (g.max_ts > ts_) {
    ts_ = g.max_ts;
    val_ = g.max_val;
  }
  g.replied = true;
  message reply;
  reply.type = msg_type::read_ack;
  reply.ts = ts_.num;
  reply.wid = ts_.wid;
  reply.val = val_;
  reply.rcounter = rc;
  net.send(reader, reply);
}

std::unique_ptr<automaton> maxmin_server::clone() const {
  return std::make_unique<maxmin_server>(*this);
}

// --------------------------------------------------------- maxmin_reader --

maxmin_reader::maxmin_reader(system_config cfg, std::uint32_t index)
    : cfg_(std::move(cfg)), index_(index) {}

void maxmin_reader::invoke_read(netout& net) {
  FASTREG_EXPECTS(!pending_);
  pending_ = true;
  obs::op_begin(self(), /*is_write=*/false);
  obs::round_issue(self(), 1);
  rcounter_ += 1;
  have_min_ = false;
  min_ts_ = {};
  min_val_.clear();
  acks_.clear();
  message m;
  m.type = msg_type::read_req;
  m.rcounter = rcounter_;
  for (std::uint32_t i = 0; i < cfg_.S(); ++i) {
    net.send(server_id(i), m);
  }
}

void maxmin_reader::on_message(netout&, const process_id& from,
                               const message& m) {
  if (!pending_ || m.type != msg_type::read_ack || !from.is_server()) return;
  if (m.rcounter != rcounter_ || acks_.contains(from.index)) return;
  acks_.insert(from.index);
  // The "min" half of max-min: return the smallest adopted maximum, which
  // is guaranteed to be stored at a majority of servers.
  if (!have_min_ || m.wts() < min_ts_) {
    have_min_ = true;
    min_ts_ = m.wts();
    min_val_ = m.val;
  }
  if (acks_.size() >= cfg_.quorum()) {
    pending_ = false;
    completed_ += 1;
    last_result_ = read_result{min_ts_.num, min_ts_.wid, min_val_, 1};
    obs::round_ack(self(), 1);
    obs::op_end(self(), 1);
  }
}

std::unique_ptr<automaton> maxmin_reader::clone() const {
  return std::make_unique<maxmin_reader>(*this);
}

// -------------------------------------------------------------- protocol --

std::unique_ptr<automaton> maxmin_protocol::make_writer(
    const system_config& cfg, std::uint32_t index, object_id) const {
  FASTREG_EXPECTS(index == 0);
  return std::make_unique<abd_writer>(cfg);
}

std::unique_ptr<automaton> maxmin_protocol::make_reader(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<maxmin_reader>(cfg, index);
}

std::unique_ptr<automaton> maxmin_protocol::make_server(
    const system_config& cfg, std::uint32_t index, object_id) const {
  return std::make_unique<maxmin_server>(cfg, index);
}

}  // namespace fastreg
