// trace_merge -- merges per-node flight-recorder dumps (the *.recorder
// files a checker failure emits, or obs::recorder_dump_all output) into
// one causally-ordered timeline.
//
//   trace_merge [--json OUT] DUMP...
//     Validates and parses every dump, merges them by (clock domain,
//     timestamp), checks the causal invariant (no recv before its
//     matching send within a domain), prints the per-trace narrative,
//     and with --json also writes Chrome trace-event (catapult) JSON for
//     about:tracing / Perfetto.
//
//   trace_merge --validate FILE...
//     Validation only, no output on success. Each FILE is auto-detected:
//     content starting with '[' or '{' is checked as catapult JSON,
//     anything else as a recorder dump (grammar, then parse + merge +
//     causal check across ALL the dump files together).
//
// Exit 0 when everything validated, 1 with a diagnostic otherwise.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char buf[64 * 1024];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

// First non-whitespace byte decides the flavor: catapult JSON starts
// with '[' (or '{' for the object form), a recorder dump never does.
bool looks_like_json(const std::string& text) {
  for (const char ch : text) {
    if (ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') continue;
    return ch == '[' || ch == '{';
  }
  return false;
}

int usage() {
  std::fprintf(stderr,
               "usage: trace_merge [--json OUT] DUMP...\n"
               "       trace_merge --validate FILE...\n");
  return 1;
}

int run_validate(int argc, char** argv) {
  if (argc < 1) return usage();
  std::vector<std::vector<fastreg::obs::timeline_event>> per_node;
  for (int i = 0; i < argc; ++i) {
    std::string text;
    if (!read_file(argv[i], text)) {
      std::fprintf(stderr, "trace_merge: cannot open %s\n", argv[i]);
      return 1;
    }
    if (looks_like_json(text)) {
      const auto err = fastreg::obs::validate_catapult(text);
      if (!err.empty()) {
        std::fprintf(stderr, "trace_merge: %s: %s\n", argv[i], err.c_str());
        return 1;
      }
      continue;
    }
    const auto err = fastreg::obs::validate_recorder_dump(text);
    if (!err.empty()) {
      std::fprintf(stderr, "trace_merge: %s: %s\n", argv[i], err.c_str());
      return 1;
    }
    per_node.push_back(fastreg::obs::parse_recorder_dump(text));
  }
  if (!per_node.empty()) {
    const auto merged = fastreg::obs::merge_events(std::move(per_node));
    const auto err = fastreg::obs::validate_timeline(merged);
    if (!err.empty()) {
      std::fprintf(stderr, "trace_merge: causal check failed: %s\n",
                   err.c_str());
      return 1;
    }
  }
  std::printf("trace_merge: %d file(s) ok\n", argc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "--validate") == 0) {
    return run_validate(argc - 2, argv + 2);
  }
  const char* json_out = nullptr;
  int first = 1;
  if (std::strcmp(argv[1], "--json") == 0) {
    if (argc < 4) return usage();
    json_out = argv[2];
    first = 3;
  }
  std::vector<std::vector<fastreg::obs::timeline_event>> per_node;
  for (int i = first; i < argc; ++i) {
    std::string text;
    if (!read_file(argv[i], text)) {
      std::fprintf(stderr, "trace_merge: cannot open %s\n", argv[i]);
      return 1;
    }
    const auto err = fastreg::obs::validate_recorder_dump(text);
    if (!err.empty()) {
      std::fprintf(stderr, "trace_merge: %s: %s\n", argv[i], err.c_str());
      return 1;
    }
    per_node.push_back(fastreg::obs::parse_recorder_dump(text));
  }
  const auto merged = fastreg::obs::merge_events(std::move(per_node));
  const auto causal = fastreg::obs::validate_timeline(merged);
  if (!causal.empty()) {
    std::fprintf(stderr, "trace_merge: causal check failed: %s\n",
                 causal.c_str());
    return 1;
  }
  std::fputs(fastreg::obs::render_narrative(merged).c_str(), stdout);
  if (json_out != nullptr) {
    const auto json = fastreg::obs::render_catapult(merged);
    std::FILE* f = std::fopen(json_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "trace_merge: cannot write %s\n", json_out);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("trace_merge: wrote %s (%zu events)\n", json_out,
                merged.size());
  }
  return 0;
}
