// A network node: one or more protocol automata (actors) hosted on a
// sharded epoll reactor pool, speaking the framed TCP protocol of
// framing.h.
//
// Topology (matching the paper's client/server system):
//  * server nodes listen on a TCP port; clients connect to every server
//    lazily and keep the connection open; servers answer over the same
//    connection.
//  * server nodes also open outbound connections to other servers when the
//    protocol requires it (the max-min variant's gossip round).
//
// Reactor sharding: node_options::reactors picks the number of event-loop
// threads. Reactor 0 owns the listener and dispatches accepted
// connections round-robin across the pool; each connection's frame
// buffer, zero-copy buffer chain and batch-window state are owned by
// exactly one reactor and never touched from another thread. A send whose
// destination connection lives on a different reactor ships the messages
// to the owning reactor's task queue (serial-checked against fd reuse)
// and is encoded there, so receivers observe the same frame/step
// structure either way.
//
// Actors: the classic constructor hosts one automaton (actor 0) and every
// historical entry point keeps working unchanged. A node built with the
// hub constructor hosts MANY client automata (add_actor) multiplexed over
// the reactor pool -- the fan-in configuration the store's async
// front-end uses to drive thousands of pipelined client connections from
// a handful of threads. Each actor is pinned to a home reactor
// (index % reactors); its invocations run there and its outbound
// connections are created there, so a client actor's whole data path is
// single-threaded. Server automata may be stepped from any reactor
// (deliveries arrive on whichever reactor owns the inbound connection);
// a per-actor step mutex serializes those steps.
//
// Outbound path (zero-copy): frames encode straight into the destination
// connection's buffer_chain (exact-size reservation, no intermediate byte
// vector), and a flush hands the whole chain to one writev. The flush
// controller is per-CONNECTION: each connection has its own batch window
// (node_options::batch_window_us / adaptive) plus a bytes budget
// (node_options::flush_bytes) that flushes early when the backlog is
// already worth a writev. Coalescing is strictly at the BYTE level --
// each send/send_batch still forms its own frame, so the receiving
// automaton observes exactly the same step structure (one on_batch per
// send_batch) as the simulator's envelope model, whatever the window is.
//
// Fault hooks: every connection can be paused (no reads, no writes --
// bytes queue up; healing flushes them), blackholed (reads and writes
// silently discarded; healing RESETS the connection, since a partially
// written frame cannot be resumed), or reset outright. set_fault_all
// drives partition schedules from the stress harness.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "checker/history.h"
#include "net/buffer_chain.h"
#include "net/framing.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "registers/automaton.h"

namespace fastreg::net {

/// Where to find each server. Clients and servers share one address book.
struct address_book {
  std::vector<std::uint16_t> server_ports;
};

/// Per-connection fault injection state (stress/partition harness).
enum class conn_fault : std::uint8_t {
  none = 0,
  /// No reads, no writes; outbound bytes queue. Healing flushes them.
  pause = 1,
  /// Reads and writes silently discarded. Healing resets the connection
  /// (a half-written frame cannot be resumed without corrupting the
  /// peer's stream).
  blackhole = 2,
};

/// Reactor-pool and outbound flush policy of a node. Frames always encode
/// straight into the destination connection's buffer chain; the policy
/// decides when the chain is handed to writev.
struct node_options {
  /// Flush window in microseconds, per connection. 0 = flush within the
  /// reactor step that queued the bytes (lowest latency; the pre-window
  /// behavior). > 0 = a connection's queued frames wait up to this long
  /// on the reactor's timerfd, so one writev coalesces frames across
  /// automaton steps (Nagle-style: higher throughput for bounded added
  /// latency).
  std::uint32_t batch_window_us{0};
  /// Adaptive mode: each connection's effective window starts at 0 and
  /// widens -- up to batch_window_us (or adaptive_cap_us when
  /// batch_window_us is 0) -- while its flushes keep observing
  /// multi-frame backlog; it collapses back toward 0 when that
  /// connection goes idle, so a lone request is not taxed the full
  /// window.
  bool adaptive{false};
  std::uint32_t adaptive_cap_us{500};
  /// Bytes budget of the per-connection flush controller: under a batch
  /// window, a connection whose backlog reaches this many bytes is
  /// flushed immediately (the backlog already amortizes a writev; waiting
  /// longer only adds latency). 0 disables the budget.
  std::uint32_t flush_bytes{64 * 1024};
  /// Number of reactor (event-loop) threads. Connections are owned by
  /// exactly one reactor; reactor 0 accepts and deals new connections
  /// round-robin.
  std::uint32_t reactors{1};

  [[nodiscard]] std::uint32_t window_cap_us() const {
    return batch_window_us != 0 ? batch_window_us : adaptive_cap_us;
  }

  /// Reads FASTREG_BATCH_WINDOW_US (an integer window in microseconds,
  /// "0"/unset = immediate flush, or "adaptive" / "adaptive:<cap_us>"),
  /// FASTREG_REACTORS (a positive integer) and FASTREG_FLUSH_BYTES (a
  /// byte count; 0 disables the budget).
  [[nodiscard]] static node_options from_env();
};

class node final : public netout {
 public:
  /// Classic single-automaton node: the automaton becomes actor 0 and
  /// every un-indexed entry point below operates on it.
  node(system_config cfg, std::unique_ptr<automaton> a,
       std::shared_ptr<const address_book> book, node_options opt = {});
  /// Hub node: starts with no actors; add client automata with
  /// add_actor() before start().
  node(system_config cfg, std::shared_ptr<const address_book> book,
       node_options opt = {});
  ~node() override;

  node(const node&) = delete;
  node& operator=(const node&) = delete;

  /// Installs another automaton on this node (before start() only).
  /// Returns its actor index; the actor is pinned to reactor
  /// (index % reactors).
  std::size_t add_actor(std::unique_ptr<automaton> a);
  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  [[nodiscard]] const process_id& actor_self(std::size_t actor) const;

  /// Servers: bind the listener (port 0 = ephemeral) before start().
  void bind_listener(std::uint16_t port = 0);
  [[nodiscard]] std::uint16_t listen_port() const;

  void start();
  void stop();

  /// Blocking client operations (call from any non-reactor thread).
  /// Returns nullopt / false on timeout.
  [[nodiscard]] std::optional<read_result> blocking_read(
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] std::optional<read_result> blocking_read(
      std::size_t actor,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool blocking_write(
      value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool blocking_write(
      std::size_t actor, value_t v,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Generic blocking invocation for automata that expose
  /// async_client_iface (the store front-end): `start` runs on the
  /// actor's home reactor (it may begin several pipelined ops); returns
  /// once every op it began completed, or false on timeout. Histories
  /// are the caller's job.
  [[nodiscard]] bool blocking_op(
      const std::function<void(automaton&, netout&)>& start,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool blocking_op(
      std::size_t actor, const std::function<void(automaton&, netout&)>& start,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  // Pipelined async client support (async_client_iface automata). The
  // reactor mirrors the iface's in-flight and completed counters under
  // mu_ so callers can wait without racing automaton internals.

  /// Waits until fewer than `limit` ops are in flight on the actor (a
  /// pipeline slot is free). False on timeout.
  [[nodiscard]] bool wait_ops_in_flight_below(
      std::size_t limit,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool wait_ops_in_flight_below(
      std::size_t actor, std::size_t limit,
      std::chrono::milliseconds timeout);
  /// Waits until the actor has completed at least `target` ops since
  /// construction. False on timeout.
  [[nodiscard]] bool wait_ops_completed(
      std::uint64_t target,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));
  [[nodiscard]] bool wait_ops_completed(std::size_t actor,
                                        std::uint64_t target,
                                        std::chrono::milliseconds timeout);
  /// Reactor-mirrored ops_completed() (safe from any thread).
  [[nodiscard]] std::uint64_t async_completed() const;
  [[nodiscard]] std::uint64_t async_completed(std::size_t actor) const;

  /// Runs `fn` on the actor's home reactor and waits for it to finish.
  /// The only safe way for non-reactor code to inspect automaton state
  /// that late messages may still mutate (e.g. draining store
  /// completions).
  void run_on_reactor(const std::function<void(automaton&)>& fn);
  void run_on_reactor(std::size_t actor,
                      const std::function<void(automaton&)>& fn);

  /// Like run_on_reactor, but NEVER runs `fn` inline when the reactor is
  /// not running: returns false instead (also when the reactor exits
  /// before draining the task). For callers that treat a stopped node as
  /// crashed (the reconfiguration control plane) -- the inline fallback
  /// would mutate a "crashed" automaton behind the deployment's back and
  /// is racy against a concurrent stop().
  [[nodiscard]] bool try_run_on_reactor(
      const std::function<void(automaton&)>& fn);
  [[nodiscard]] bool try_run_on_reactor(
      std::size_t actor, const std::function<void(automaton&)>& fn);

  /// Like run_on_reactor, but hands `fn` the actor's netout so it can
  /// start or re-issue protocol traffic (the reconfiguration control
  /// plane: migration handoff ops, resuming parked ops). Does NOT wait
  /// for any started op to complete -- pair with a completion poll.
  void run_on_reactor_net(const std::function<void(automaton&, netout&)>& fn);
  void run_on_reactor_net(
      std::size_t actor,
      const std::function<void(automaton&, netout&)>& fn);

  /// Applies `f` to every current connection on every reactor (and to
  /// connections accepted/opened later, until cleared with
  /// conn_fault::none). Returns after every reactor acknowledged, so the
  /// fault is fully in force (or fully lifted) when this returns.
  /// Healing a blackholed connection resets it.
  void set_fault_all(conn_fault f);
  /// Hard-resets every connection on every reactor (the peers reconnect
  /// with fresh framing state).
  void reset_all_conns();

  /// Merged operation history recorded by this node's client actors.
  /// Safe to call after stop(), or concurrently (copies under lock).
  [[nodiscard]] checker::history hist() const;

  [[nodiscard]] const process_id& self() const { return self_; }

  // netout over actor 0, for drivers that treat the node itself as the
  // automaton's port (single-actor nodes only; must honor the same
  // step-serialization contract as reactor-delivered steps).
  void send(const process_id& to, message m) override;
  void send_batch(const process_id& to, std::vector<message> msgs) override;

 private:
  struct actor_state;

  /// Which reactor owns a connection, plus an fd-reuse guard.
  struct conn_ref {
    std::uint32_t reactor{0};
    int fd{-1};
    std::uint64_t serial{0};
  };

  struct connection {
    unique_fd fd;
    frame_buffer in;
    /// Outbound frames, encoded in place; flushed with one writev.
    buffer_chain out;
    std::optional<process_id> peer;
    /// Actor whose traffic this connection carries: the opening actor
    /// for outbound connections, actor 0 for inbound ones.
    actor_state* owner{nullptr};
    /// Monotone creation serial; cross-reactor sends carry it so a
    /// shipped frame never lands on a recycled fd.
    std::uint64_t serial{0};
    bool connecting{false};
    /// Queued bytes awaiting a deferred (windowed) flush.
    bool dirty{false};
    conn_fault fault{conn_fault::none};
    /// Per-connection flush-controller state (see node_options).
    std::uint32_t cur_window_us{0};
    std::uint64_t frames_since_flush{0};
    /// now_ns() when this connection's current batch window opened
    /// (first frame queued since its last flush); 0 = no window open.
    std::uint64_t window_open_ns{0};
  };

  struct reactor {
    std::uint32_t index{0};
    node* owner{nullptr};
    unique_fd epoll_fd;
    unique_fd event_fd;
    unique_fd timer_fd;
    std::thread thread;
    std::unordered_map<int, connection> conns;
    std::vector<int> dirty_fds;
    bool window_armed{false};
    std::uint64_t armed_deadline_ns{0};
    /// Connection currently being drained by handle_readable; close_conn
    /// on it is deferred until the drain returns.
    int drain_guard_fd{-1};
    bool drain_close_pending{false};
    std::mutex q_mu;
    std::deque<std::function<void()>> tasks;
    /// Guarded by the node's mu_ (paired with cv_).
    bool exited{false};
  };

  /// The actor's netout: routes sends through the hosting node with the
  /// actor's identity (hello frames, outbound connection ownership).
  struct actor_port final : netout {
    node* n{nullptr};
    actor_state* a{nullptr};
    void send(const process_id& to, message m) override;
    void send_batch(const process_id& to, std::vector<message> msgs) override;
  };

  struct actor_state {
    std::unique_ptr<automaton> automaton_;
    process_id self{};
    std::uint32_t home_reactor{0};
    /// Cached cross-casts; non-null per the automaton's roles.
    async_client_iface* async_iface{nullptr};
    reader_iface* reader{nullptr};
    writer_iface* writer{nullptr};
    obs::recorder* rec{nullptr};
    actor_port port{};
    /// Serializes automaton steps. Uncontended for client actors (all
    /// their steps run on the home reactor); contended only for a server
    /// actor stepped from several reactors. All sends happen under it.
    std::mutex step_mu;
    /// Outbound connections to servers, by server index. Guarded by
    /// step_mu. Entries are validated lazily against the connection's
    /// serial (a closed connection leaves a stale ref behind).
    std::map<std::uint32_t, conn_ref> out_to_server;
    // ---- guarded by the node's mu_ ----
    checker::history hist;
    std::uint64_t reads_done{0};
    std::uint64_t writes_done{0};
    std::size_t open_op_index{0};
    bool op_open{false};
    // Reactor-maintained mirror of async_iface state, so blocking_op and
    // the pipelined waiters can wait under mu_ without racing automaton
    // internals.
    bool async_busy{false};
    std::uint64_t async_done{0};
    std::size_t async_in_flight{0};
  };

  void init_reactors();
  void bind_node_metrics();
  [[nodiscard]] actor_state& actor_at(std::size_t i) const;
  [[nodiscard]] reactor& home_of(actor_state& a) {
    return *reactors_[a.home_reactor];
  }
  /// The reactor struct this thread is currently running, when it
  /// belongs to THIS node; nullptr otherwise (off-reactor context).
  [[nodiscard]] reactor* current_reactor() const;

  void reactor_main(reactor& r);
  void post_to(reactor& r, std::function<void()> fn);
  void wake(reactor& r);
  void adopt_inbound(reactor& r, unique_fd fd);
  void handle_readable(reactor& r, int fd);
  void handle_writable(reactor& r, int fd);
  void flush(reactor& r, int fd, connection& c);
  void close_conn(reactor& r, int fd);
  /// Post-encode hook: immediate-mode flush, or dirty-marking + window
  /// arming / bytes-budget flush under a batch window.
  void after_queue(reactor& r, int fd, connection& c);
  /// Window-expiry path: flushes connections whose window deadline
  /// passed, applies the per-connection adaptive policy, re-arms for the
  /// earliest remaining deadline.
  void flush_expired(reactor& r);
  /// Step-end path: adaptive-mode connections currently at window 0
  /// flush at the end of the reactor step that queued their bytes.
  void flush_step_end(reactor& r);
  /// Closes a connection's window accounting (observe wait, reset
  /// counters) just before its flush.
  void finish_window(connection& c);
  void arm_window_at(reactor& r, std::uint64_t deadline_ns);
  void update_epoll(reactor& r, int fd, connection& c);
  void apply_fault(reactor& r, int fd, connection& c, conn_fault f);

  // Send path. All called with a.step_mu held (sends only originate
  // inside automaton steps / invocations, which hold it).
  void send_from(actor_state& a, const process_id& to, message m);
  void send_batch_from(actor_state& a, const process_id& to,
                       std::vector<message> msgs);
  void route_from(actor_state& a, const process_id& to,
                  std::vector<message> msgs, bool batch);
  /// Encodes `msgs` into the connection's chain on its owning reactor
  /// (inline when that is the current context) and runs the flush
  /// controller. `batch` selects batch frames (with chunking) vs one msg
  /// frame.
  void queue_frames(reactor& r, int fd, connection& c, const process_id& from,
                    std::vector<message>& msgs, bool batch);
  /// Opens an outbound connection to server `index` on reactor `r` for
  /// actor `a` (hello first) and registers it in a.out_to_server.
  conn_ref open_to_server(reactor& r, actor_state& a, std::uint32_t index);
  /// Posts `msgs` to the reactor owning `ref` for encoding there. Drops
  /// (and, for server routes, lazily invalidates a.out_to_server) when
  /// the serial shows the connection is gone.
  void ship_to(const conn_ref& ref, actor_state& a, int server_index,
               std::vector<message> msgs, bool batch);
  /// Runs `fn` on every reactor and returns once all acknowledged (or
  /// exited). No-op before start().
  void run_on_all_reactors(const std::function<void(reactor&)>& fn);

  void poll_client_completion(actor_state& a);

  system_config cfg_;
  std::shared_ptr<const address_book> book_;
  process_id self_;
  node_options opt_;

  std::vector<std::unique_ptr<actor_state>> actors_;
  std::vector<std::unique_ptr<reactor>> reactors_;
  unique_fd listen_fd_;
  std::uint64_t next_conn_rr_{0};
  std::atomic<std::uint64_t> next_conn_serial_{1};
  /// Fault inherited by connections created while a fault is in force.
  std::atomic<conn_fault> default_fault_{conn_fault::none};

  /// Reply routes: peer pid -> connection it introduced itself on.
  /// Written by the owning reactor on hello/close, read by any reactor
  /// when routing a send.
  mutable std::mutex route_mu_;
  std::unordered_map<process_id, conn_ref> inbound_by_peer_;

  /// Registry handles, resolved once off-reactor with this node's label;
  /// the hot path only touches these cached pointers. Shared across
  /// reactors (all underlying metrics are thread-safe).
  struct wire_metrics {
    obs::counter* frames_out{nullptr};
    obs::counter* bytes_out{nullptr};
    obs::counter* frames_in{nullptr};
    obs::counter* bytes_in{nullptr};
    obs::counter* writev_calls{nullptr};
    obs::counter* short_writes{nullptr};
    obs::counter* flushes_immediate{nullptr};
    obs::counter* flushes_window{nullptr};
    obs::counter* flushes_step{nullptr};
    obs::counter* flushes_bytes{nullptr};
    obs::counter* window_widen{nullptr};
    obs::counter* conn_resets{nullptr};
    obs::gauge* connections{nullptr};
    obs::gauge* backlog_bytes{nullptr};
    obs::histogram* flush_ns{nullptr};
    obs::histogram* window_wait_ns{nullptr};
  };
  wire_metrics wm_;
  /// Per-reactor handles (label reactor="i"), pre-created before any
  /// reactor thread exists -- the registry's fetch-or-create path is
  /// asserted cold on reactor threads.
  struct reactor_metrics {
    obs::counter* tasks_run{nullptr};
    obs::counter* accepts{nullptr};
    obs::counter* ships_in{nullptr};
    obs::gauge* connections{nullptr};
  };
  std::vector<reactor_metrics> rm_;
  bool metrics_bound_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool started_{false};
  bool stop_requested_{false};

  static std::uint64_t now_ns();
};

}  // namespace fastreg::net
