#include "persist/durable.h"

#include <chrono>
#include <filesystem>

#include "common/log.h"

namespace fastreg::persist {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const std::string& ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    LOG_ERROR("persist: cannot create directory %s: %s", dir.c_str(),
              ec.message().c_str());
  }
  return dir;
}

}  // namespace

std::string server_durability::log_path_for(const std::string& dir,
                                            std::uint32_t index) {
  return dir + "/server_" + std::to_string(index) + ".log";
}

std::string server_durability::snap_path_for(const std::string& dir,
                                             std::uint32_t index) {
  return dir + "/server_" + std::to_string(index) + ".snap";
}

server_durability::server_durability(options opt, std::uint32_t server_index)
    : opt_(std::move(opt)),
      index_(server_index),
      snap_path_(snap_path_for(ensure_dir(opt_.dir), server_index)),
      log_(log_path_for(opt_.dir, server_index), opt_.fsync,
           opt_.fsync_interval_ms) {
  // Server construction is a control-plane event (deployment, restart,
  // reconfig), the same exemption store::server::bind_metrics uses.
  obs::allow_hot_registration exempt;
  auto& reg = obs::registry::instance();
  const std::string lbl = "node=\"" + to_string(server_id(index_)) + "\"";
  pm_.log_bytes = &reg.get_counter("fastreg_persist_log_bytes_total", lbl);
  pm_.log_records = &reg.get_counter("fastreg_persist_log_records_total", lbl);
  pm_.fsyncs = &reg.get_counter("fastreg_persist_fsyncs_total", lbl);
  pm_.snapshots = &reg.get_counter("fastreg_persist_snapshots_total", lbl);
  pm_.replayed_records =
      &reg.get_counter("fastreg_persist_replayed_records_total", lbl);
  pm_.torn_tail_truncations =
      &reg.get_counter("fastreg_persist_torn_tail_truncations_total", lbl);
  pm_.replay_ns = &reg.get_histogram("fastreg_persist_replay_ns", lbl);
  replay();
}

void server_durability::replay() {
  const std::uint64_t t0 = steady_now_ns();
  std::string snap_err;
  if (auto snap = load_snapshot_file(snap_path_, &snap_err)) {
    rec_.epoch = snap->epoch;
    rec_.found = true;
    for (auto& [obj, s] : snap->objects) {
      rec_.objects[obj] = std::move(s);
    }
  } else if (!snap_err.empty()) {
    // A snapshot that fails validation is rejected wholesale; the log
    // (whose records survived independent CRC checks) is still replayed.
    LOG_ERROR("persist: server %u: %s -- starting from the op log alone",
              index_, snap_err.c_str());
  }
  auto loaded = wal::load(log_.path(), /*repair=*/true);
  if (loaded.truncated()) pm_.torn_tail_truncations->inc();
  for (auto& rec : loaded.records) {
    rec_.found = true;
    if (rec.epoch > rec_.epoch) rec_.epoch = rec.epoch;
    switch (rec.k) {
      case log_record::kind::op:
      case log_record::kind::seed:
        rec_.objects[rec.obj] = std::move(rec.snap);
        break;
      case log_record::kind::epoch_mark:
        // The install set these objects aside for migration: their
        // recovered state is void in the new generation (post-mark seed
        // records re-establish the ones this server was re-seeded with).
        for (const auto obj : rec.fenced) rec_.objects.erase(obj);
        break;
    }
  }
  pm_.replayed_records->inc(loaded.records.size());
  pm_.replay_ns->observe(steady_now_ns() - t0);
  if (rec_.found) {
    LOG_INFO("persist: server %u recovered %zu objects at epoch %llu "
             "(%zu log records replayed%s)",
             index_, rec_.objects.size(),
             static_cast<unsigned long long>(rec_.epoch),
             loaded.records.size(),
             loaded.truncated() ? ", torn tail truncated" : "");
  }
}

void server_durability::discard_recovered() {
  LOG_WARN("persist: server %u discarding recovered state at epoch %llu "
           "(%zu objects): the fleet's shard map moved on while this "
           "server was down; it re-bootstraps via the seed-fetch path",
           index_, static_cast<unsigned long long>(rec_.epoch),
           rec_.objects.size());
  rec_ = {};
  log_.reset();
  std::error_code ec;
  std::filesystem::remove(snap_path_, ec);
}

void server_durability::append(const log_record& rec) {
  const std::uint64_t bytes_before = log_.bytes_appended();
  const std::uint64_t fsyncs_before = log_.fsyncs_;
  log_.append(rec);
  pm_.log_bytes->inc(log_.bytes_appended() - bytes_before);
  pm_.log_records->inc();
  if (log_.fsyncs_ > fsyncs_before) {
    pm_.fsyncs->inc(log_.fsyncs_ - fsyncs_before);
  }
  ++since_snapshot_;
}

void server_durability::append_op(epoch_t epoch, object_id obj,
                                  const register_snapshot& s) {
  log_record rec;
  rec.k = log_record::kind::op;
  rec.epoch = epoch;
  rec.obj = obj;
  rec.snap = s;
  append(rec);
}

void server_durability::append_seed(epoch_t epoch, object_id obj,
                                    const register_snapshot& s) {
  log_record rec;
  rec.k = log_record::kind::seed;
  rec.epoch = epoch;
  rec.obj = obj;
  rec.snap = s;
  append(rec);
}

void server_durability::append_epoch_mark(
    epoch_t epoch, const std::vector<object_id>& fenced) {
  log_record rec;
  rec.k = log_record::kind::epoch_mark;
  rec.epoch = epoch;
  rec.fenced = fenced;
  append(rec);
}

void server_durability::write_snapshot(
    epoch_t epoch,
    std::vector<std::pair<object_id, register_snapshot>> objects) {
  snapshot_data snap;
  snap.epoch = epoch;
  snap.objects = std::move(objects);
  std::string err;
  if (!write_snapshot_file(snap_path_, snap, opt_.fsync, &err)) {
    LOG_ERROR("persist: server %u snapshot failed: %s -- keeping the log "
              "(replay falls back to it)",
              index_, err.c_str());
    // Retry only after another snapshot_every records accumulate, not on
    // every subsequent append.
    since_snapshot_ = 0;
    return;
  }
  pm_.snapshots->inc();
  since_snapshot_ = 0;
  // The snapshot covers everything the log held; a crash between the
  // rename above and this truncate replays snapshot + full log, which is
  // correct (later records win) -- just slower, and only until the next
  // snapshot.
  log_.reset();
}

}  // namespace fastreg::persist
