// E1 -- Figure 2's headline claim: with R < S/t - 2, every read and write
// of the fast SWMR register completes in ONE communication round-trip,
// halving read latency versus ABD's two round-trips (Section 1, Section 4).
//
// Reproduces the shape on the timed simulator (link delay U[50,150] ticks):
// fast reads ~= 1 RTT ~= writes; ABD reads ~= 2 RTT; max-min reads sit in
// between (3 one-way delays). Columns: p50/p99 latency in ticks, measured
// round-trips, messages per op.
#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

namespace {

void sweep(bool concurrent) {
  std::printf("== E1.%s: read/write latency, %s ops ==\n",
              concurrent ? "b" : "a",
              concurrent ? "concurrent closed-loop" : "isolated");
  table t({"proto", "S", "t", "R", "read_p50", "read_p99", "write_p50",
           "rd_rounds", "wr_rounds", "rd_traced", "wr_traced", "msgs/op",
           "atomic"});
  struct cfg_case {
    std::uint32_t S, t, R;
  };
  for (const auto c : {cfg_case{8, 1, 2}, cfg_case{16, 2, 4},
                       cfg_case{25, 4, 2}, cfg_case{31, 3, 6}}) {
    for (const char* name : {"fast_swmr", "abd", "maxmin"}) {
      auto proto = make_protocol(name);
      system_config cfg;
      cfg.servers = c.S;
      cfg.t_failures = c.t;
      cfg.readers = c.R;
      workload_options opt;
      opt.concurrent = concurrent;
      opt.num_writes = 30;
      opt.reads_per_reader = 30;
      opt.seed = 42;
      const auto rep = run_measured(*proto, cfg, opt);
      const auto atomic = checker::check_swmr_atomicity(rep.hist);
      t.add_row({name, std::to_string(c.S), std::to_string(c.t),
                 std::to_string(c.R), fmt(rep.read_latency.p50()),
                 fmt(rep.read_latency.p99()), fmt(rep.write_latency.p50()),
                 fmt(rep.read_rounds.mean()), fmt(rep.write_rounds.mean()),
                 fmt(rep.traced.read_rounds), fmt(rep.traced.write_rounds),
                 fmt(rep.msgs_per_op), atomic.ok ? "yes" : "NO"});
    }
  }
  t.print();
  std::printf(
      "expected shape: fast_swmr read_p50 ~= write_p50 (1 RTT, ~200 ticks); "
      "abd read ~= 2x (2 RTT); maxmin ~= 1.5x (3 one-way delays). "
      "rd/wr_traced are the tracer's issue/ack-measured rounds and must "
      "match rd/wr_rounds (fast_swmr 1.0, abd reads 2.0).\n\n");
}

}  // namespace

int main() {
  std::printf("E1: how fast can a distributed atomic read be? "
              "(paper: 1 round-trip iff R < S/t - 2)\n\n");
  sweep(/*concurrent=*/false);
  sweep(/*concurrent=*/true);
  return 0;
}
