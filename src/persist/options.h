// Durability knobs for the store's per-server persistence (src/persist).
//
// Kept in its own tiny header so store_config (store/shard_map.h) can
// embed the options without pulling the WAL implementation into every
// translation unit that routes a key.
#pragma once

#include <cstdint>
#include <string>

namespace fastreg::persist {

/// When the op log is fsync'd:
///  * never    -- rely on the page cache. An in-process restart (the
///                crash model every test and stress schedule uses) still
///                recovers everything; only a machine crash loses the
///                un-synced tail, which the crash budget covers.
///  * interval -- fsync at most once per fsync_interval_ms of appends
///                (the default: bounded loss window, negligible cost).
///  * every_op -- fsync after every appended record (durability of each
///                acked write against power loss, at syscall cost).
enum class fsync_policy : std::uint8_t { never = 0, interval = 1, every_op = 2 };

[[nodiscard]] const char* to_string(fsync_policy p);
/// Parses "never" / "interval" / "every_op"; `fallback` on anything else.
[[nodiscard]] fsync_policy parse_fsync_policy(const std::string& s,
                                              fsync_policy fallback);

struct options {
  /// Directory holding each server's `server_<i>.log` / `server_<i>.snap`.
  /// Empty = persistence off (the in-memory-only historical behavior).
  std::string dir{};
  fsync_policy fsync{fsync_policy::interval};
  /// Minimum milliseconds between fsyncs under fsync_policy::interval.
  std::uint64_t fsync_interval_ms{25};
  /// Appended log records between snapshots; each snapshot rewrites the
  /// per-object state and truncates the log, bounding replay time.
  std::uint64_t snapshot_every{512};

  [[nodiscard]] bool enabled() const { return !dir.empty(); }

  /// Options rooted at `dir` with the fsync policy taken from the
  /// FASTREG_FSYNC environment knob ("never" | "interval" | "every_op";
  /// default interval) -- what the stress harness and CI soaks use.
  [[nodiscard]] static options from_env(std::string dir);
};

}  // namespace fastreg::persist
