// The store's client front-end: one process multiplexing per-object
// reader or writer automata behind a get(key)/put(key, v) surface.
//
// Roles mirror the paper's client split: a reader-role client (process_id
// role::reader) serves gets, a writer-role client serves puts. For
// single-writer shard protocols the writer-role client 0 is the sole
// writer of every object, which preserves each protocol's correctness
// argument unchanged.
//
// Pipelining: well-formedness (one outstanding op per client) applies per
// OBJECT, because each object is an independent register with its own
// automaton. A client may therefore keep one op in flight on each of many
// distinct keys; all requests started before one flush() leave as batched
// envelopes (see batching.h), which is where the store's transport win
// comes from.
//
// Reconfiguration (src/reconfig): every outbound message is stamped with
// the epoch of the client's shard map. When a server's epoch_nack reveals
// a newer epoch, the client refetches the map from its map_source, drops
// the inner automata of objects whose protocol changed, and re-issues
// their in-flight ops under the new map (a fresh attempt number makes
// stale nacks recognizable). An op nacked because its key is still
// draining is PARKED -- automaton discarded, invocation remembered -- and
// re-issued when the migration coordinator signals the drain is over.
// Client-visible semantics are unchanged: one invocation, one completion,
// however many epochs the op crossed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "store/batching.h"
#include "store/shard_map.h"

namespace fastreg::store {

/// One store operation to invoke: a get of `key` (is_put false) or a put
/// of `val` to `key`. The unit the pipelined front-ends submit in.
struct store_op {
  std::string key{};
  bool is_put{false};
  value_t val{};
};

/// Result of one completed store operation, as observed by the client.
struct store_result {
  std::string key{};
  bool is_put{false};
  ts_t ts{k_initial_ts};
  std::int32_t wid{0};
  value_t val{};
  /// Communication round-trips the underlying register op used.
  int rounds{0};
};

class client final : public automaton, public async_client_iface {
 public:
  client(std::shared_ptr<const shard_map> shards, process_id self,
         map_source source = {});
  client(const client& o);
  client& operator=(const client&) = delete;

  // ------------------------------------------------------------ front-end --
  // Call within an invocation step (world::invoke_step / node::blocking_op):
  // begin one or more ops on DISTINCT keys, then flush() exactly once.

  /// Starts a read of `key` (reader-role clients only). Precondition: no
  /// op pending on this key.
  void begin_get(const std::string& key);
  /// Starts a write of `key` (writer-role clients only). Precondition: no
  /// op pending on this key.
  void begin_put(const std::string& key, value_t v);
  /// Sends everything the begun ops produced, coalesced per destination.
  void flush(netout& net);

  /// Completed ops since the last call, in completion order.
  [[nodiscard]] std::vector<store_result> take_completions();
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  /// True while an op on `key` is in flight (e.g. orphaned by a driver
  /// timeout); begin_get/begin_put on such a key would violate their
  /// precondition.
  [[nodiscard]] bool has_pending(const std::string& key) const {
    return pending_.contains(key_object_id(key));
  }

  // ---------------------------------------------------------- reconfig --
  // Control-plane surface; call on the automaton's thread (between steps
  // on the simulator, via node::run_on_reactor* on TCP).

  [[nodiscard]] epoch_t epoch() const { return map_->epoch(); }
  /// Ops parked behind a draining key, awaiting resume_parked.
  [[nodiscard]] std::size_t parked_count() const;

  /// Pulls the latest map from the map_source; if it is newer, drops the
  /// inner automata of objects whose protocol changed and re-issues their
  /// non-parked in-flight ops under the new epoch (sends buffer in the
  /// outbox; follow with flush()).
  void refresh_map();

  /// Re-issues the parked op (if any) the object holds, after refreshing
  /// the map. Called by the migration coordinator once the object's drain
  /// completed. Follow with flush(). The string overload hashes the key.
  void resume_parked(const std::string& key);
  void resume_parked(object_id obj);

  /// Records the migrated state of the object so the writer automaton the
  /// next (re-)issued put creates starts above the migrated timestamp.
  /// Must be installed before the object's drain is lifted. A put already
  /// in flight on the object is parked (its automaton predates the floor,
  /// so its requests could complete below the seeded state); the resume
  /// that follows every floor install re-issues it floored.
  void seed_writer_floor(const std::string& key, const register_snapshot& s);
  void seed_writer_floor(object_id obj, const register_snapshot& s);

  // Migration handoff I/O: the coordinator drives these on ONE client (by
  // convention reader 0). One handoff op at a time. The coordinator works
  // in object ids (live discovery reads them out of server indexes, where
  // the original key strings do not exist).

  /// Phase 1: ask every server for the old-generation state of the object
  /// (the generation superseded at `old_epoch` + 1). Completes --
  /// mig_done() -- after a quorum of valid answers; mig_snapshot() is
  /// their maximum.
  void begin_state_read(object_id obj, epoch_t old_epoch);
  /// Phase 2: install `s` as the new-generation state of the object on
  /// every server, stamped with `new_epoch` (the generation being
  /// seeded; servers drop seeds of another generation, so a seed_req
  /// delayed past the migration it belongs to cannot install stale
  /// state later). Completes after a QUORUM of acks -- the paper's
  /// t-crash tolerance holds through the handoff; servers that missed
  /// the seed lazily fetch it from a generation peer on first
  /// post-drain access (store/server.h).
  void begin_seed(object_id obj, const register_snapshot& s,
                  epoch_t new_epoch);
  [[nodiscard]] bool mig_done() const { return mig_.has_value() && mig_->done; }
  [[nodiscard]] const register_snapshot& mig_snapshot() const;

  // ------------------------------------------------------------- scrape --
  // Live introspection (src/obs): ask a store server for its metrics
  // dump over the data path. One scrape in flight at a time.

  /// Sends a stats_req to server `index`. Follow with flush(); the reply
  /// is stashed for take_stats().
  void begin_stats(std::uint32_t server_index);
  [[nodiscard]] bool stats_ready() const { return stats_.has_value(); }
  /// The scraped `name{labels} value` text dump; empty if none arrived.
  [[nodiscard]] std::string take_stats();

  // async_client_iface
  [[nodiscard]] bool op_in_progress() const override {
    return !pending_.empty();
  }
  [[nodiscard]] std::uint64_t ops_completed() const override {
    return completed_;
  }
  /// Window occupancy for pipelined transports (parked ops included:
  /// they still hold their key).
  [[nodiscard]] std::size_t ops_in_flight() const override {
    return pending_.size();
  }

  // automaton
  void on_message(netout& net, const process_id& from,
                  const message& m) override;
  void on_batch(netout& net, const process_id& from,
                std::span<const message> msgs) override;
  [[nodiscard]] std::unique_ptr<automaton> clone() const override;
  [[nodiscard]] process_id self() const override { return self_; }

  /// Distinct objects this client has touched (diagnostic).
  [[nodiscard]] std::size_t objects_hosted() const { return objects_.size(); }

 private:
  struct pending_op {
    std::string key{};
    bool is_put{false};
    value_t val{};  // written value, kept so the op can be re-issued
    /// Inner completion counter snapshot at (re-)invocation.
    std::uint64_t before{0};
    /// Current attempt id, from the per-object monotonic counter
    /// (attempts_): advanced on every invocation AND re-issue, so
    /// stragglers aimed at an abandoned attempt -- of this op or any
    /// earlier op on the object -- are recognizably stale. Outbound
    /// messages carry it and nacks echo it.
    std::uint32_t attempt{0};
    /// Epoch the current attempt was issued under. A nack reaching an
    /// attempt issued under an older epoch re-issues it; a nack at the
    /// attempt's own epoch parks it (handle_nack).
    epoch_t epoch{k_initial_epoch};
    /// Parked: automaton discarded, waiting for resume_parked.
    bool parked{false};
    /// Flight-recorder identity: assigned at begin_get/begin_put and
    /// kept across re-issues; span counts the re-issues.
    std::uint64_t trace{0};
    std::uint16_t span{0};
  };

  /// One in-flight migration handoff op (coordinator-driven).
  struct mig_op {
    bool is_seed{false};
    object_id obj{k_default_object};
    std::uint64_t seq{0};
    std::unordered_set<std::uint32_t> acked{};
    register_snapshot best{};
    bool done{false};
  };

  /// An inner automaton plus the epoch it was created under. Replies
  /// stamped with an older epoch belong to a superseded generation's
  /// automaton (a different protocol) and must not be fed to this one --
  /// e.g. an abd read_ack carries no seen set and an empty prev tag, and
  /// would drive a fast_swmr reader's predicate-fail path to bottom.
  struct inner_automaton {
    std::unique_ptr<automaton> a;
    epoch_t birth{k_initial_epoch};
  };

  automaton& inner_for(object_id obj);
  void invoke_on(object_id obj, pending_op& op);
  void reissue(object_id obj, pending_op& op);
  void park(object_id obj, pending_op& op);
  void handle_nack(const message& m);
  void handle_mig_ack(const process_id& from, const message& m);
  void route(const process_id& from, const message& m);
  /// Shared nack/mig-ack/route dispatch; returns true when m.obj's
  /// front-end op should be polled for completion afterwards.
  bool dispatch_one(const process_id& from, const message& m);
  void poll_object(object_id obj);

  std::shared_ptr<const shard_map> map_;
  map_source source_;
  process_id self_;
  std::unordered_map<object_id, inner_automaton> objects_;
  /// Migrated state per object: applied via writer_iface::seed_writer when
  /// the object's writer automaton is (re)created.
  std::unordered_map<object_id, register_snapshot> floors_;
  std::unordered_map<object_id, pending_op> pending_;
  /// Per-object attempt counter (monotonic across ops; see pending_op).
  std::unordered_map<object_id, std::uint32_t> attempts_;
  std::optional<mig_op> mig_;
  std::uint64_t mig_seq_{0};
  batch_collector outbox_;
  std::vector<store_result> completions_;
  std::uint64_t completed_{0};
  /// Scrape state: stashed stats_ack dump and the sequence its reply
  /// must echo (stale acks of an earlier scrape are dropped).
  std::optional<std::string> stats_;
  std::uint64_t stats_seq_{0};
  /// Registry handles (per-client label); clones share them, so the
  /// registry counts the union while parked_count() stays exact.
  obs::counter* parks_total_{nullptr};
  obs::counter* resumes_total_{nullptr};
  /// Flight recorder for this node (stable global; cached like the
  /// counters so the hot path never takes the registry lock).
  obs::recorder* rec_{nullptr};
};

[[nodiscard]] inline client* as_store_client(automaton* a) {
  return dynamic_cast<client*>(a);
}

}  // namespace fastreg::store
