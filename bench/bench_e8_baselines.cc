// E8 -- Section 1's protocol landscape: one-way message delays and message
// complexity per read, for every implementation the paper discusses:
//   abd           : 4 one-way delays (2 RTT), O(S) msgs/read
//   maxmin        : 3 one-way delays, O(S^2) msgs/read (server gossip)
//   fast_swmr     : 2 one-way delays (1 RTT), O(S) msgs/read
//   single_reader : 2 one-way delays at t < S/2 but only R = 1
// With constant link delay D, measured read latency should be exactly
// (#one-way delays) * D.
#include <cstdio>

#include "benchutil/table.h"
#include "benchutil/workload.h"
#include "checker/atomicity.h"
#include "registers/registry.h"

using namespace fastreg;
using namespace fastreg::benchutil;

int main() {
  std::printf("E8: baseline landscape (Section 1)\n\n");
  const std::uint64_t D = 100;  // constant link delay
  table t({"proto", "S", "t", "R", "read_p50", "delays(=p50/D)", "write_p50",
           "msgs/op", "atomic"});
  struct row {
    const char* proto;
    std::uint32_t S, t, R;
  };
  for (const auto c : {row{"abd", 9, 4, 2}, row{"maxmin", 9, 4, 2},
                       row{"fast_swmr", 9, 1, 2},   // needs R < S/t-2
                       row{"single_reader", 9, 4, 1}}) {
    system_config cfg;
    cfg.servers = c.S;
    cfg.t_failures = c.t;
    cfg.readers = c.R;
    workload_options opt;
    opt.delay_lo = D;
    opt.delay_hi = D;
    opt.num_writes = 20;
    opt.reads_per_reader = 20;
    const auto rep = run_measured(*make_protocol(c.proto), cfg, opt);
    t.add_row({c.proto, std::to_string(c.S), std::to_string(c.t),
               std::to_string(c.R), fmt(rep.read_latency.p50()),
               fmt(rep.read_latency.p50() / static_cast<double>(D), 2),
               fmt(rep.write_latency.p50()), fmt(rep.msgs_per_op),
               checker::check_swmr_atomicity(rep.hist).ok ? "yes" : "NO"});
  }
  t.print();
  std::printf(
      "\nexpected delays column: abd=4, maxmin=3, fast_swmr=2, "
      "single_reader=2.\nnote the resilience trade: abd/maxmin/"
      "single_reader tolerate t<S/2 (t=4 of 9); fast_swmr with R=2 "
      "tolerates only t<S/4 (t=1 of 9) -- the paper's exact price for "
      "one-round reads.\n");
  return 0;
}
