// Tiny leveled logger. Off by default so simulations stay fast; enable via
// fastreg::log_config::set_level or the FASTREG_LOG environment variable
// (trace|debug|info|warn|error|off).
#pragma once

#include <cstdio>
#include <string>

namespace fastreg {

enum class log_level : int {
  trace = 0,
  debug = 1,
  info = 2,
  warn = 3,
  error = 4,
  off = 5,
};

class log_config {
 public:
  static log_level level();
  static void set_level(log_level lv);

 private:
  static log_level& storage();
};

void log_write(log_level lv, const char* file, int line, const std::string& msg);

/// Thread-local node-id tag prepended to every log line emitted by the
/// calling thread (reactor threads set it to their node's process id, the
/// simulator to the automaton being stepped). Empty = no prefix.
void log_set_node(std::string node);
[[nodiscard]] const std::string& log_node();

/// RAII node tag for scoped contexts (the simulator sets it around each
/// automaton step; a thread that owns one node for its lifetime can call
/// log_set_node directly instead).
class scoped_log_node {
 public:
  explicit scoped_log_node(std::string node) : prev_(log_node()) {
    log_set_node(std::move(node));
  }
  ~scoped_log_node() { log_set_node(std::move(prev_)); }
  scoped_log_node(const scoped_log_node&) = delete;
  scoped_log_node& operator=(const scoped_log_node&) = delete;

 private:
  std::string prev_;
};

namespace detail {
std::string log_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace fastreg

#define FASTREG_LOG(lv, ...)                                              \
  do {                                                                    \
    if (static_cast<int>(lv) >= static_cast<int>(                         \
                                    ::fastreg::log_config::level())) {    \
      ::fastreg::log_write(lv, __FILE__, __LINE__,                        \
                           ::fastreg::detail::log_format(__VA_ARGS__));   \
    }                                                                     \
  } while (0)

#define LOG_TRACE(...) FASTREG_LOG(::fastreg::log_level::trace, __VA_ARGS__)
#define LOG_DEBUG(...) FASTREG_LOG(::fastreg::log_level::debug, __VA_ARGS__)
#define LOG_INFO(...) FASTREG_LOG(::fastreg::log_level::info, __VA_ARGS__)
#define LOG_WARN(...) FASTREG_LOG(::fastreg::log_level::warn, __VA_ARGS__)
#define LOG_ERROR(...) FASTREG_LOG(::fastreg::log_level::error, __VA_ARGS__)
