#include "store/shard_map.h"

#include "common/check.h"
#include "registers/registry.h"

namespace fastreg::store {

std::string store_config::describe() const {
  std::string out = base.describe();
  out += " shards=" + std::to_string(num_shards) + " protos=";
  for (std::size_t i = 0; i < shard_protocols.size(); ++i) {
    if (i != 0) out += "+";
    out += shard_protocols[i];
  }
  return out;
}

shard_map::shard_map(store_config cfg, epoch_t epoch)
    : cfg_(std::move(cfg)), epoch_(epoch) {
  FASTREG_EXPECTS(cfg_.num_shards >= 1);
  FASTREG_EXPECTS(!cfg_.shard_protocols.empty());
  protos_.reserve(cfg_.num_shards);
  for (std::uint32_t s = 0; s < cfg_.num_shards; ++s) {
    const auto& name =
        cfg_.shard_protocols[s % cfg_.shard_protocols.size()];
    auto p = make_protocol(name);
    FASTREG_CHECK(p != nullptr);
    protos_.push_back(std::move(p));
  }
  FASTREG_EXPECTS(cfg_.base.W() == 1 || all_multi_writer());
}

const protocol& shard_map::protocol_for_shard(std::uint32_t shard) const {
  FASTREG_EXPECTS(shard < protos_.size());
  return *protos_[shard];
}

bool shard_map::all_multi_writer() const {
  for (const auto& p : protos_) {
    if (!p->multi_writer()) return false;
  }
  return true;
}

}  // namespace fastreg::store
